package service_test

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"testing"
	"time"

	"deepcat/internal/chaos"
	"deepcat/internal/cli"
	"deepcat/internal/env"
	"deepcat/internal/fleet"
	"deepcat/internal/service"
	"deepcat/internal/service/client"
)

// fleetNode is one in-process shard: its own Manager and Router over the
// shared checkpoint directory, served on a real TCP listener so redirects
// and cross-node proxying go through genuine HTTP.
type fleetNode struct {
	url     string
	hs      *http.Server
	manager *service.Manager
	router  *fleet.Router
	client  *client.Client
}

type testFleet struct {
	t     *testing.T
	dir   string
	nodes []*fleetNode
}

// newTestFleet starts n shards over one shared checkpoint directory —
// the deployment model of a real fleet, where -data points every process
// at the same store. Listeners are opened first so every router knows the
// full membership before any server accepts a request.
func newTestFleet(t *testing.T, n int, proxy bool) *testFleet {
	t.Helper()
	dir := t.TempDir()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		urls[i] = "http://" + lis.Addr().String()
	}
	tf := &testFleet{t: t, dir: dir}
	for i, lis := range listeners {
		store, err := service.NewFSStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		m := service.NewManager(store, 0)
		router, err := fleet.NewRouter(fleet.Config{
			Self:          urls[i],
			Peers:         urls,
			ProbeInterval: -1, // readiness driven by the test, not a prober
		})
		if err != nil {
			t.Fatal(err)
		}
		m.SetOwned(router.Owns)
		hs := &http.Server{Handler: service.NewFleetServer(m, service.FleetOptions{Router: router, Proxy: proxy})}
		go hs.Serve(lis)
		c := client.New(urls[i])
		c.Retry = client.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
		tf.nodes = append(tf.nodes, &fleetNode{url: urls[i], hs: hs, manager: m, router: router, client: c})
	}
	t.Cleanup(func() {
		for _, n := range tf.nodes {
			n.hs.Close()
		}
	})
	return tf
}

// owner returns the node the (undisturbed) ring maps id to.
func (tf *testFleet) owner(id string) *fleetNode {
	url := tf.nodes[0].router.Ring().Owner(id)
	for _, n := range tf.nodes {
		if n.url == url {
			return n
		}
	}
	tf.t.Fatalf("owner %s of %s is not a fleet node", url, id)
	return nil
}

// kill simulates kill -9 of a shard: its listener and connections close with
// no checkpoint flush, and the survivors mark it down as their probers
// would. Nothing the dead manager held in memory survives.
func (tf *testFleet) kill(victim *fleetNode) {
	tf.t.Helper()
	if err := victim.hs.Close(); err != nil {
		tf.t.Fatal(err)
	}
	for _, n := range tf.nodes {
		if n != victim {
			n.router.SetReady(victim.url, false)
		}
	}
}

func TestFleetCreateAssignsSelfOwnedID(t *testing.T) {
	tf := newTestFleet(t, 3, false)
	for i, n := range tf.nodes {
		info, err := n.client.CreateSession(service.CreateSessionRequest{
			Workload: "TS", Input: 1, Seed: int64(10 + i), NoWarmStart: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// An anonymous create must never need a forward: the receiving shard
		// draws an id it owns and serves the session itself.
		if !n.router.Owns(info.ID) {
			t.Fatalf("node %d assigned id %s it does not own", i, info.ID)
		}
		if _, err := n.manager.Get(info.ID); err != nil {
			t.Fatalf("session %s not live on its creating node: %v", info.ID, err)
		}
	}
}

func TestFleetExplicitIDRoutesToOwner(t *testing.T) {
	for _, proxy := range []bool{false, true} {
		name := "redirect"
		if proxy {
			name = "proxy"
		}
		t.Run(name, func(t *testing.T) {
			tf := newTestFleet(t, 3, proxy)
			const id = "fleet-explicit-1"
			owner := tf.owner(id)

			// Create through a node that does NOT own the id; the request
			// must land on the owner (via 307 the client follows, or a
			// server-side proxy hop).
			var entry *fleetNode
			for _, n := range tf.nodes {
				if n != owner {
					entry = n
					break
				}
			}
			info, err := entry.client.CreateSession(service.CreateSessionRequest{
				ID: id, Workload: "WC", Input: 1, Seed: 3, NoWarmStart: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if info.ID != id {
				t.Fatalf("created id %s, want %s", info.ID, id)
			}
			if _, err := owner.manager.Get(id); err != nil {
				t.Fatalf("session not live on owner: %v", err)
			}
			if _, err := entry.manager.Get(id); !errors.Is(err, service.ErrNotFound) {
				t.Fatalf("entry node holds a copy: err=%v", err)
			}

			// Every node answers session calls for the id, wherever they land.
			for _, n := range tf.nodes {
				got, err := n.client.Session(id)
				if err != nil {
					t.Fatalf("session via %s: %v", n.url, err)
				}
				if got.ID != id {
					t.Fatalf("session via %s returned %s", n.url, got.ID)
				}
			}
			sug, err := entry.client.Suggest(id)
			if err != nil {
				t.Fatal(err)
			}
			if sug.Step != 1 {
				t.Fatalf("first suggestion step = %d", sug.Step)
			}
			if _, err := entry.client.Observe(id, service.ObserveRequest{Step: sug.Step, ExecTime: 120}); err != nil {
				t.Fatal(err)
			}
			got, err := owner.manager.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if got.Info().Step != 1 {
				t.Fatalf("owner session step = %d after routed round, want 1", got.Info().Step)
			}
		})
	}
}

func TestFleetRingAndReadyEndpoints(t *testing.T) {
	tf := newTestFleet(t, 3, false)
	for _, n := range tf.nodes {
		ready, err := n.client.Ready(context.Background())
		if err != nil || !ready.Ready || !ready.Store || !ready.Registry {
			t.Fatalf("readyz via %s = %+v, %v", n.url, ready, err)
		}
	}
	ring, err := tf.nodes[1].client.Ring(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ring.Self != tf.nodes[1].url || len(ring.Members) != 3 {
		t.Fatalf("ring = %+v", ring)
	}
	var selfs int
	for _, m := range ring.Members {
		if m.Self {
			selfs++
		}
		if !m.Ready {
			t.Fatalf("member %s not ready in a healthy fleet", m.URL)
		}
	}
	if selfs != 1 {
		t.Fatalf("%d members marked self, want 1", selfs)
	}
}

func TestFleetMigrateHandoff(t *testing.T) {
	tf := newTestFleet(t, 3, false)
	donor := tf.nodes[0]
	info, err := donor.client.CreateSession(service.CreateSessionRequest{
		Workload: "TS", Input: 1, Seed: 5, NoWarmStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID
	for r := 0; r < 2; r++ {
		sug, err := donor.client.Suggest(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := donor.client.Observe(id, service.ObserveRequest{Step: sug.Step, ExecTime: 100 + float64(r)}); err != nil {
			t.Fatal(err)
		}
	}

	var target *fleetNode
	for _, n := range tf.nodes {
		if n != donor {
			target = n
			break
		}
	}
	resp, err := donor.client.Migrate(context.Background(), id, target.url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != id || resp.Target != target.url {
		t.Fatalf("migrate response = %+v", resp)
	}

	// The session lives on exactly one node, with its full history.
	if _, err := donor.manager.Get(id); !errors.Is(err, service.ErrNotFound) {
		t.Fatalf("donor still holds the session: err=%v", err)
	}
	s, err := target.manager.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Info(); got.Step != 2 || got.ReplayLen == 0 {
		t.Fatalf("adopted session lost history: %+v", got)
	}

	// Requests that still hit the donor follow its tombstone to the adopter,
	// and tuning continues where it stopped: not one observation lost.
	got, err := donor.client.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 2 {
		t.Fatalf("post-migration step via donor = %d, want 2", got.Step)
	}
	sug, err := donor.client.Suggest(id)
	if err != nil {
		t.Fatal(err)
	}
	if sug.Step != 3 {
		t.Fatalf("post-migration suggestion step = %d, want 3", sug.Step)
	}
	if _, err := donor.client.Observe(id, service.ObserveRequest{Step: sug.Step, ExecTime: 95}); err != nil {
		t.Fatal(err)
	}

	// Migrating a session nobody holds is a clean 404, not a hang.
	if _, err := donor.client.Migrate(context.Background(), "no-such-session", target.url); err == nil {
		t.Fatal("migrating a missing session succeeded")
	}
}

// chaosDriver evaluates suggestions on a fault-injected environment the way
// an external scheduler would, reporting failed runs as wasted default time.
type chaosDriver struct {
	env     env.Environment
	defTime float64
}

func newChaosDriver(t *testing.T, workload string, seed int64) *chaosDriver {
	t.Helper()
	e, err := cli.BuildEnv("a", workload, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	ch := chaos.Wrap(e, chaos.Config{
		Seed:          seed,
		CrashRate:     0.10,
		OutlierRate:   0.10,
		OutlierFactor: 25,
	})
	return &chaosDriver{env: ch, defTime: e.DefaultTime()}
}

// round drives one suggest/observe cycle for id through c, returning the
// acknowledged step.
func (d *chaosDriver) round(t *testing.T, c *client.Client, id string) int {
	t.Helper()
	sug, err := c.Suggest(id)
	if err != nil {
		t.Fatalf("suggest %s: %v", id, err)
	}
	req := service.ObserveRequest{Step: sug.Step}
	o, err := env.EvaluateWithContext(context.Background(), d.env, sug.Action)
	if err != nil || !isFinite(o.ExecTime) {
		// Crashed or corrupted measurement: a scheduler reports the wasted
		// wall clock as a failed run (JSON cannot even carry NaN).
		req.ExecTime = d.defTime
		req.Failed = true
	} else {
		req.ExecTime = o.ExecTime
		req.State = o.State
		req.Failed = o.Failed
	}
	resp, err := c.Observe(id, req)
	if err != nil {
		t.Fatalf("observe %s step %d: %v", id, sug.Step, err)
	}
	return resp.Step
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// TestFleetKill9Failover is the fleet chaos acceptance test: a shard dies
// mid-traffic with kill -9 semantics (no flush, no goodbye) while its
// sessions tune under injected faults. Every session must resume on a
// surviving shard with at most the one in-flight (never-acknowledged)
// suggestion lost, and every durable checkpoint must verify finite.
func TestFleetKill9Failover(t *testing.T) {
	tf := newTestFleet(t, 3, false)
	const sessions = 9
	const rounds = 3
	workloads := []string{"TS", "WC", "PR"}

	ids := make([]string, sessions)
	drivers := make([]*chaosDriver, sessions)
	acked := make(map[string]int, sessions)
	for i := 0; i < sessions; i++ {
		n := tf.nodes[i%len(tf.nodes)]
		info, err := n.client.CreateSession(service.CreateSessionRequest{
			Workload: workloads[i%len(workloads)], Input: 1, Seed: int64(100 + i), NoWarmStart: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
		drivers[i] = newChaosDriver(t, workloads[i%len(workloads)], int64(100+i))
	}
	for r := 0; r < rounds; r++ {
		for i, id := range ids {
			// Deliberately round-robin the entry node so most calls cross
			// shards before the kill, exercising routing under load.
			c := tf.nodes[(i+r)%len(tf.nodes)].client
			acked[id] = drivers[i].round(t, c, id)
		}
	}
	// Half the sessions have a suggestion in flight when the shard dies —
	// the one observation the handoff contract allows to be lost.
	for i, id := range ids {
		if i%2 == 0 {
			if _, err := tf.nodes[i%len(tf.nodes)].client.Suggest(id); err != nil {
				t.Fatal(err)
			}
		}
	}

	victim := tf.nodes[1]
	var victimOwned int
	for _, id := range ids {
		if tf.owner(id) == victim {
			victimOwned++
		}
	}
	if victimOwned == 0 {
		t.Fatal("no session landed on the victim shard; the kill proves nothing")
	}
	tf.kill(victim)
	survivors := []*fleetNode{tf.nodes[0], tf.nodes[2]}

	for i, id := range ids {
		c := survivors[i%len(survivors)].client
		info, err := c.Session(id)
		if err != nil {
			t.Fatalf("session %s unreachable after kill: %v", id, err)
		}
		// Write-through checkpointing makes every acknowledged observation
		// durable; only the unacknowledged pending suggestion may vanish.
		if info.Step < acked[id] || info.Step > acked[id]+1 {
			t.Fatalf("session %s resumed at step %d, acked %d (lost >1 observation)", id, info.Step, acked[id])
		}
		// The ring must have moved the victim's sessions to a live owner
		// that actually holds them now.
		newOwnerURL := survivors[0].router.Owner(id)
		if newOwnerURL == victim.url {
			t.Fatalf("session %s still routed to the dead shard", id)
		}
		var newOwner *fleetNode
		for _, n := range survivors {
			if n.url == newOwnerURL {
				newOwner = n
			}
		}
		if newOwner == nil {
			t.Fatalf("owner %s of %s is not a survivor", newOwnerURL, id)
		}
		if _, err := newOwner.manager.Get(id); err != nil {
			t.Fatalf("session %s not live on its new owner %s: %v", id, newOwnerURL, err)
		}

		// Tuning continues exactly where the acknowledged history ends.
		sug, err := c.Suggest(id)
		if err != nil {
			t.Fatalf("suggest %s after failover: %v", id, err)
		}
		if sug.Step != acked[id]+1 {
			t.Fatalf("session %s post-failover suggestion step = %d, want %d", id, sug.Step, acked[id]+1)
		}
		if step := drivers[i].round(t, c, id); step != acked[id]+1 {
			t.Fatalf("session %s post-failover round acked step %d, want %d", id, step, acked[id]+1)
		}
	}

	// Zero non-finite values durable: every checkpoint in the shared store
	// decodes and verifies, through chaos, routing and the kill.
	store, err := service.NewFSStore(tf.dir)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != sessions {
		t.Fatalf("store holds %d checkpoints, want %d", len(stored), sessions)
	}
	for _, id := range stored {
		data, err := store.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := service.VerifyCheckpoint(data); err != nil {
			t.Fatalf("checkpoint %s: %v", id, err)
		}
	}
}

// BenchmarkLoadgenSuggest measures one full loadgen round — HTTP suggest
// plus observe through the client against an in-process daemon — the unit
// of work deepcat-loadgen scales to 10k sessions.
func BenchmarkLoadgenSuggest(b *testing.B) {
	m := service.NewManager(service.NewMemStore(), 0)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: service.NewServer(m)}
	go hs.Serve(lis)
	defer hs.Close()

	c := client.New("http://" + lis.Addr().String())
	info, err := c.CreateSession(service.CreateSessionRequest{
		Workload: "TS", Input: 1, Seed: 1, NoWarmStart: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sug, err := c.Suggest(info.ID)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Observe(info.ID, service.ObserveRequest{Step: sug.Step, ExecTime: 100}); err != nil {
			b.Fatal(err)
		}
	}
}
