package service

import (
	"deepcat/internal/rl"
	"deepcat/internal/spine"
	"deepcat/internal/warehouse"
)

// DefaultSpineAdoptEvery is the default weight-adoption cadence: a
// spine-mode session checks for a newer published policy every this many
// observations.
const DefaultSpineAdoptEvery = 4

// SpineConfig wires the shared actor/learner replay spine into the manager;
// see Manager.AttachSpine.
type SpineConfig struct {
	// Spine is the shared replay backbone and learner pool. Required.
	Spine *spine.Spine
	// AdoptEvery is the adoption cadence in observations (<= 0 selects
	// DefaultSpineAdoptEvery). The cadence keys off the session step, so it
	// is deterministic across a checkpoint resume.
	AdoptEvery int
}

// spineBinding is the normalized spine wiring shared by every session.
type spineBinding struct {
	sp         *spine.Spine
	adoptEvery int
}

// AttachSpine switches sessions created or resumed afterwards to
// actor/learner mode: each observation is recorded without inline
// fine-tuning, the transition is enqueued into the spine under the
// session's workload-family signature, and every AdoptEvery-th observation
// the session adopts the family learner's latest published weights (if
// newer than what it runs). Call it once at daemon startup, before Resume
// or any Create. Without it sessions keep today's inline training.
func (m *Manager) AttachSpine(cfg SpineConfig) {
	if cfg.Spine == nil {
		return
	}
	if cfg.AdoptEvery <= 0 {
		cfg.AdoptEvery = DefaultSpineAdoptEvery
	}
	m.spn = &spineBinding{sp: cfg.Spine, adoptEvery: cfg.AdoptEvery}
}

// Spine returns the attached spine, or nil when sessions train inline.
func (m *Manager) Spine() *spine.Spine {
	if m.spn == nil {
		return nil
	}
	return m.spn.sp
}

// WarmSpineFromWarehouse replays the warehouse's retained experience into
// the spine, one lane per workload-family signature, and returns the number
// of transitions ingested. The daemon calls it at boot so the learner pool
// resumes from the fleet's full WAL history instead of waiting for live
// sessions to refill the rings. Records are collected first and ingested
// after, keeping the scan callback quick (the warehouse lock is held for
// its duration).
func WarmSpineFromWarehouse(sp *spine.Spine, wh *warehouse.Warehouse) int {
	if sp == nil || wh == nil {
		return 0
	}
	byFam := make(map[string][]warehouse.Record)
	_ = wh.ScanRecords(func(rec warehouse.Record) bool {
		byFam[rec.Signature] = append(byFam[rec.Signature], rec)
		return true
	})
	n := 0
	for fam, recs := range byFam {
		batch := make([]rl.Transition, 0, len(recs))
		for _, rec := range recs {
			batch = append(batch, rec.Transition)
		}
		sp.Ingest(fam, batch)
		n += len(batch)
	}
	return n
}
