package service

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"deepcat/internal/admission"
)

// DeadlineHeader carries a request's remaining time budget, in integer
// milliseconds, across hops. The typed client stamps it from its context
// deadline; the server parses it into the request context; the fleet
// proxy re-stamps the *remaining* budget before forwarding, so each hop
// sees the time actually left rather than the original allowance. A
// request whose budget cannot cover the endpoint's observed p99 is
// rejected up front with 504 — shedding in microseconds work that would
// have died of timeout after seconds of queueing.
const DeadlineHeader = "X-Deepcat-Deadline"

// deadlineMinSamples is how many observations an endpoint's latency
// histogram needs before the up-front p99 budget gate engages. Below it
// the server has no trustworthy tail estimate and admits the request on
// its deadline alone.
const deadlineMinSamples = 50

// maxDeadlineBudget caps a parsed deadline budget. Anything above it is
// effectively "no deadline" and clamping keeps arithmetic sane against
// absurd or hostile header values.
const maxDeadlineBudget = time.Hour

// parseDeadline extracts the millisecond budget header. ok reports
// whether a budget was supplied; err a malformed one.
func parseDeadline(r *http.Request) (budget time.Duration, ok bool, err error) {
	v := r.Header.Get(DeadlineHeader)
	if v == "" {
		return 0, false, nil
	}
	ms, perr := strconv.ParseInt(v, 10, 64)
	if perr != nil || ms <= 0 {
		return 0, false, fmt.Errorf("malformed %s header %q: want positive integer milliseconds", DeadlineHeader, v)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > maxDeadlineBudget {
		d = maxDeadlineBudget
	}
	return d, true, nil
}

// remainingBudgetMS renders a context deadline as a header value: the
// milliseconds left, floored at 1 so a nearly-dead budget still
// propagates as a (tiny) budget rather than disappearing.
func remainingBudgetMS(deadline time.Time) string {
	ms := time.Until(deadline).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return strconv.FormatInt(ms, 10)
}

// endpointPriority maps an endpoint label to its admission class.
// guarded=false exempts the endpoint entirely: health and readiness
// probes must answer during overload (shedding them convinces the fleet
// router its peers are dead, amplifying the outage), and the metrics
// surfaces are how operators see the overload at all.
func endpointPriority(endpoint string) (prio admission.Priority, guarded bool) {
	switch endpoint {
	case "healthz", "readyz", "metrics_snapshot", "fleet_metrics", "fleet_ring":
		return admission.Normal, false
	case "suggest":
		// The serving decision a scheduler is blocked on.
		return admission.Critical, true
	case "observe":
		// Training data; a shed costs one transition, not an answer.
		return admission.High, true
	default:
		// Session admin, traces, warehouse browsing, migrations.
		return admission.Normal, true
	}
}

// writeShed answers an admission shed: 429 with the limiter's Retry-After
// hint. The shard header is already stamped by instrument, so the client
// knows which member of the fleet is saturated.
func writeShed(w http.ResponseWriter, retryAfter time.Duration, endpoint string, prio admission.Priority) {
	w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error: fmt.Sprintf("%s shed by admission control (%s priority): shard over capacity", endpoint, prio),
	})
}

// writeBudgetReject answers the up-front deadline gate: 504 because from
// the caller's point of view the request *would have* timed out — just
// without burning a slot first. Retry-After 1 invites a retry with a
// fresh budget (or against a healthier shard).
func writeBudgetReject(w http.ResponseWriter, budget, p99 time.Duration, endpoint string) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{
		Error: fmt.Sprintf("%s budget %s cannot cover observed p99 %s for %s",
			DeadlineHeader, budget.Round(time.Millisecond), p99.Round(time.Millisecond), endpoint),
	})
}
