package service

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"deepcat/internal/mat"
	"deepcat/internal/nn"
	"deepcat/internal/rl"
)

// VerifyCheckpoint decodes a session checkpoint and fails on the first
// non-finite value anywhere in it: the session metadata (times, states,
// sanitizer history), every replay transition, and every network weight and
// optimizer moment of the embedded agent snapshot. Chaos harnesses run it
// over the checkpoint store after a fault-injected session to prove that
// corrupted measurements never reached disk.
func VerifyCheckpoint(data []byte) error {
	var ck sessionCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ck); err != nil {
		return fmt.Errorf("service: verify checkpoint: %w", err)
	}
	m := ck.Meta
	if err := finiteValues(fmt.Sprintf("session %s: meta", m.ID),
		append([]float64{m.PrevTime, m.BestTime}, m.State...),
		m.BestAction, m.SanRecent); err != nil {
		return err
	}
	if ck.Snap == nil {
		return fmt.Errorf("service: verify checkpoint: session %s has no snapshot", m.ID)
	}
	if err := verifyReplay(m.ID, ck.Snap.Replay); err != nil {
		return err
	}
	return verifyAgent(m.ID, ck.Snap.Agent)
}

// verifyReplay checks every transition in every pool of a replay snapshot.
func verifyReplay(id string, rs rl.ReplayState) error {
	check := func(pool string, ps *rl.PoolState) error {
		if ps == nil {
			return nil
		}
		for i, tr := range ps.Transitions {
			if err := finiteValues(fmt.Sprintf("session %s: replay %s[%d]", id, pool, i),
				[]float64{tr.Reward}, tr.State, tr.Action, tr.NextState); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check("uniform", rs.Uniform); err != nil {
		return err
	}
	if err := check("high", rs.High); err != nil {
		return err
	}
	return check("low", rs.Low)
}

// verifyAgent checks the agent's networks and Adam moments. A NaN admitted
// into a gradient update spreads through every weight it touches, so one
// poisoned observation that reached learning is visible here even after the
// offending transition has aged out of replay.
func verifyAgent(id string, st rl.TD3State) error {
	nets := map[string]*nn.MLP{
		"actor": st.Actor, "actor_target": st.ActorTarget,
		"critic1": st.Critic1, "critic2": st.Critic2,
		"critic1_target": st.Critic1T, "critic2_target": st.Critic2T,
	}
	for name, mlp := range nets {
		if mlp == nil {
			continue
		}
		for li, layer := range mlp.Layers {
			where := fmt.Sprintf("session %s: %s layer %d", id, name, li)
			if layer.W != nil {
				if err := finiteValues(where, layer.W.Data); err != nil {
					return err
				}
			}
			if err := finiteValues(where, layer.B); err != nil {
				return err
			}
		}
	}
	for name, opt := range map[string]nn.AdamState{
		"actor_opt": st.ActorOpt, "critic1_opt": st.Critic1Opt, "critic2_opt": st.Critic2Opt,
	} {
		where := fmt.Sprintf("session %s: %s", id, name)
		for _, mtx := range append(append([]*mat.Matrix(nil), opt.MW...), opt.VW...) {
			if mtx == nil {
				continue
			}
			if err := finiteValues(where, mtx.Data); err != nil {
				return err
			}
		}
		for _, vs := range append(opt.MB, opt.VB...) {
			if err := finiteValues(where, vs); err != nil {
				return err
			}
		}
	}
	return nil
}

// finiteValues fails on the first NaN/Inf across the given slices.
func finiteValues(where string, slices ...[]float64) error {
	for _, vs := range slices {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("service: verify checkpoint: %s carries non-finite value %g", where, v)
			}
		}
	}
	return nil
}
