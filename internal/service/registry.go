package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"deepcat/internal/obs"
	"deepcat/internal/trace"
	"deepcat/internal/warehouse"
)

// Manager owns the daemon's sessions: creation against a capacity bound,
// lookup, listing, deletion, and write-through checkpointing to a Store.
// All methods are safe for concurrent use; per-session work happens under
// the session's own lock so slow fine-tuning in one session never blocks
// the others.
type Manager struct {
	store Store
	max   int
	// wh, when non-nil, is the fleet experience warehouse new sessions
	// warm-start from and all sessions stream transitions into.
	wh *warehouse.Warehouse
	// met is never nil; over a nil registry every instrument no-ops.
	met *metrics
	log *obs.Logger
	// tc, when non-nil, enables per-session flight recording.
	tc *TraceConfig
	// res is the fault-handling policy applied to every session (breaker
	// and sanitizer); defaults to DefaultResilience.
	res Resilience
	// spn, when non-nil, switches sessions to actor/learner mode against
	// the shared replay spine; see AttachSpine.
	spn *spineBinding
	// owned, when non-nil, filters Resume to sessions this fleet shard is
	// responsible for; other checkpoints in a shared store belong to peers.
	owned func(id string) bool

	mu sync.Mutex
	// sessions maps id -> session; a nil value reserves an id whose
	// (possibly slow, offline-training) construction is still in flight.
	sessions map[string]*Session
}

// NewManager creates a manager persisting to store and admitting at most
// maxSessions live sessions (<= 0 means unlimited).
func NewManager(store Store, maxSessions int) *Manager {
	return &Manager{
		store:    store,
		max:      maxSessions,
		met:      newMetrics(nil),
		res:      DefaultResilience(),
		sessions: make(map[string]*Session),
	}
}

// SetResilience replaces the fault-handling policy for sessions created or
// resumed afterwards; call it once at daemon startup, before Resume or any
// Create.
func (m *Manager) SetResilience(r Resilience) { m.res = r.normalize() }

// DegradedCount returns the number of live sessions whose circuit breaker
// is currently open (degraded or half-open).
func (m *Manager) DegradedCount() int {
	n := 0
	for _, s := range m.snapshotSessions() {
		if s.Health() != HealthHealthy {
			n++
		}
	}
	return n
}

// Count returns the number of sessions, including reservations in flight.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// MaxSessions returns the admission bound (0 = unlimited).
func (m *Manager) MaxSessions() int { return m.max }

// AttachWarehouse wires the fleet experience warehouse into the manager.
// Call it once at daemon startup, before Resume or any Create; sessions
// created (or resumed) afterwards stream their transitions into it and new
// sessions warm-start from its donors.
func (m *Manager) AttachWarehouse(wh *warehouse.Warehouse) { m.wh = wh }

// AttachObs wires the observability layer into the manager: session and
// checkpoint metrics register on reg, lifecycle events log to logger.
// Call it once at daemon startup, before Resume or any Create. Either
// argument may be nil; the corresponding half stays a no-op.
func (m *Manager) AttachObs(reg *obs.Registry, logger *obs.Logger) {
	m.met = newMetrics(reg)
	m.log = logger
}

// Obs returns the manager's registry (possibly nil) and logger (possibly
// nil); the HTTP server instruments itself from the same pair.
func (m *Manager) Obs() (*obs.Registry, *obs.Logger) { return m.met.reg, m.log }

// Warehouse returns the attached warehouse, or nil when the daemon runs
// without one.
func (m *Manager) Warehouse() *warehouse.Warehouse { return m.wh }

// RefreshDerivedMetrics recomputes the gauges that are views over live
// state rather than event counters: the live-session count, the spine's
// per-family health gauges (queue depth, ingest backlog, policy version and
// staleness, learner duty cycle), and the per-family adoption lag — how
// many policy versions the furthest-behind live session of each family
// trails the learner's latest publish by. It runs on every metrics
// snapshot, so a scrape is never staler than the request that served it;
// without a registry it no-ops.
func (m *Manager) RefreshDerivedMetrics() {
	reg := m.met.reg
	if reg == nil {
		return
	}
	reg.Gauge("deepcat_sessions_live").Set(int64(m.Count()))
	if m.spn == nil {
		return
	}
	m.spn.sp.RefreshHealthMetrics()
	// Adoption lag: the learner may publish versions faster than sessions
	// adopt them (sessions adopt on a step cadence); the lag gauge is the
	// replay-path "versions behind" signal per family.
	minAdopted := make(map[string]int)
	for _, s := range m.snapshotSessions() {
		if s.spn == nil {
			continue
		}
		s.mu.Lock()
		fam, v := s.sig, s.meta.SpineVersion
		s.mu.Unlock()
		if cur, ok := minAdopted[fam]; !ok || v < cur {
			minAdopted[fam] = v
		}
	}
	for fam, adopted := range minAdopted {
		pol, ok := m.spn.sp.Policy(fam)
		if !ok {
			continue
		}
		lag := pol.Version - adopted
		if lag < 0 {
			lag = 0
		}
		reg.Gauge("deepcat_spine_adoption_lag_versions", "family", fam).Set(int64(lag))
	}
}

// MetricsSnapshot refreshes the derived gauges and captures the manager's
// registry as a mergeable snapshot; a manager without a registry yields an
// empty one.
func (m *Manager) MetricsSnapshot() obs.Snapshot {
	m.RefreshDerivedMetrics()
	return m.met.reg.Snapshot()
}

// AttachTrace enables flight recording for sessions created or resumed
// afterwards; call it once at daemon startup, before Resume or any Create.
func (m *Manager) AttachTrace(tc TraceConfig) { m.tc = &tc }

// TraceEnabled reports whether the manager records session traces.
func (m *Manager) TraceEnabled() bool { return m.tc != nil }

// Trace returns up to n recent flight-recorder events of the session,
// oldest first (n <= 0 means all buffered). ErrNotFound covers both an
// unknown session and a daemon without tracing.
func (m *Manager) Trace(id string, n int) ([]trace.Event, error) {
	s, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	return s.TraceRecent(n)
}

// labels returns the pprof label set identifying a session's work in CPU
// profiles: the session id and its workload family signature.
func (s *Session) labels() pprof.LabelSet {
	return pprof.Labels("deepcat_session", s.meta.ID, "workload", s.sig)
}

// newID generates a random session id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Create opens a new session, warm-starting it per the request, and writes
// its initial checkpoint. The manager lock is only held to reserve the id,
// so concurrent creates and calls on other sessions proceed in parallel.
func (m *Manager) Create(req CreateSessionRequest) (SessionInfo, error) {
	if req.Cluster == "" {
		req.Cluster = "a"
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	id := req.ID
	if id == "" {
		id = newID()
	}
	if err := ValidateID(id); err != nil {
		return SessionInfo{}, err
	}

	m.mu.Lock()
	if _, exists := m.sessions[id]; exists {
		m.mu.Unlock()
		return SessionInfo{}, fmt.Errorf("session %s already exists: %w", id, ErrConflict)
	}
	if m.max > 0 && len(m.sessions) >= m.max {
		m.mu.Unlock()
		return SessionInfo{}, fmt.Errorf("%d sessions live: %w", len(m.sessions), ErrFull)
	}
	m.sessions[id] = nil // reserve
	m.mu.Unlock()

	var s *Session
	var err error
	// Label the (possibly long, offline-training) construction work so CPU
	// profiles attribute it to the session and workload family.
	pprof.Do(context.Background(),
		pprof.Labels("deepcat_session", id, "workload", warehouse.Signature(req.Cluster, req.Workload, req.Input)),
		func(context.Context) {
			s, err = newSession(id, req, time.Now(), m.wh, m.met, m.tc, m.res, m.spn)
			if err == nil {
				err = m.checkpoint(s)
			}
		})
	m.mu.Lock()
	if err != nil {
		delete(m.sessions, id)
		m.mu.Unlock()
		m.log.Warn("session create failed", "id", id, "workload", req.Workload, "err", err)
		return SessionInfo{}, err
	}
	m.sessions[id] = s
	m.mu.Unlock()
	m.met.sessionsCreated.Inc()
	info := s.Info()
	if info.WarmStarted {
		m.met.warmStarts.Inc()
	}
	m.log.Info("session created", "id", id, "workload", req.Workload, "input", req.Input,
		"cluster", info.Cluster, "warm_started", info.WarmStarted, "donor", info.Donor)
	return info, nil
}

// Get returns the session with the given id.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("session %s: %w", id, ErrNotFound)
	}
	if s == nil {
		return nil, fmt.Errorf("session %s is still being created: %w", id, ErrConflict)
	}
	return s, nil
}

// List returns the info of every live session, sorted by id.
func (m *Manager) List() []SessionInfo {
	m.mu.Lock()
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			live = append(live, s)
		}
	}
	m.mu.Unlock()
	infos := make([]SessionInfo, len(live))
	for i, s := range live {
		infos[i] = s.Info()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// Suggest forwards to the session with a background context; see
// SuggestCtx.
func (m *Manager) Suggest(id, reqID string) (SuggestResponse, error) {
	return m.SuggestCtx(context.Background(), id, reqID)
}

// SuggestCtx forwards to the session. ctx is the originating request's
// context: an abandoned request stops the work instead of computing a
// suggestion nobody will read. reqID, when non-empty, tags the recorded
// trace span with the originating HTTP request id.
func (m *Manager) SuggestCtx(ctx context.Context, id, reqID string) (SuggestResponse, error) {
	s, err := m.Get(id)
	if err != nil {
		return SuggestResponse{}, err
	}
	var resp SuggestResponse
	pprof.Do(ctx, s.labels(), func(ctx context.Context) {
		resp, err = s.Suggest(ctx, time.Now(), reqID)
	})
	return resp, err
}

// Observe forwards to the session with a background context; see
// ObserveCtx.
func (m *Manager) Observe(id string, req ObserveRequest, reqID string) (ObserveResponse, error) {
	return m.ObserveCtx(context.Background(), id, req, reqID)
}

// ObserveCtx forwards to the session and checkpoints the advanced state,
// so a daemon crash after the response never loses an acknowledged
// observation. ctx gates only the entry — once the session starts
// learning, the observation completes and checkpoints even if the caller
// goes away. reqID tags the recorded trace span (see SuggestCtx).
func (m *Manager) ObserveCtx(ctx context.Context, id string, req ObserveRequest, reqID string) (ObserveResponse, error) {
	s, err := m.Get(id)
	if err != nil {
		return ObserveResponse{}, err
	}
	var resp ObserveResponse
	pprof.Do(ctx, s.labels(), func(ctx context.Context) {
		resp, err = s.Observe(ctx, req, time.Now(), reqID)
		if err != nil {
			return
		}
		if cerr := m.checkpoint(s); cerr != nil {
			err = fmt.Errorf("observation recorded but checkpoint failed: %w", cerr)
		}
	})
	if err != nil {
		return ObserveResponse{}, err
	}
	return resp, nil
}

// Delete closes the session and removes it and its checkpoint.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok && s != nil {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("session %s: %w", id, ErrNotFound)
	}
	if s == nil {
		return fmt.Errorf("session %s is still being created: %w", id, ErrConflict)
	}
	if s.Health() != HealthHealthy {
		m.met.degradedSessions.Dec()
	}
	s.Close()
	// Taking the session's checkpoint lock after Close guarantees ordering
	// against an in-flight checkpoint: either it already passed the closed
	// check and its Save lands before this Delete, or it observes the
	// session closed and skips the Save. Without this, an observe racing
	// the delete could resurrect the checkpoint file after it was removed.
	s.ckpt.Lock()
	defer s.ckpt.Unlock()
	err := m.store.Delete(id)
	if err == nil {
		m.met.sessionsDeleted.Inc()
		m.log.Info("session deleted", "id", id)
	}
	return err
}

// checkpoint writes the session's current state through to the store. The
// session's checkpoint lock spans the closed check and the store write, so
// a concurrent Delete can never interleave between them (see Delete).
func (m *Manager) checkpoint(s *Session) error {
	start := time.Now()
	sp := trace.Begin(s.rec, "checkpoint")
	s.ckpt.Lock()
	defer s.ckpt.Unlock()
	data, err := s.Checkpoint()
	if err != nil {
		return err
	}
	err = m.store.Save(s.ID(), data)
	if err == nil {
		m.met.checkpointDur.ObserveSince(start)
		m.met.checkpointBytes.Add(uint64(len(data)))
		sp.AttrInt("bytes", len(data)).End()
	}
	return err
}

// CheckpointAll persists every live session; used at graceful shutdown.
func (m *Manager) CheckpointAll() error {
	var errs []error
	for _, s := range m.snapshotSessions() {
		if err := m.checkpoint(s); err != nil && !errors.Is(err, ErrClosed) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Resume loads every checkpoint in the store into a live session. It
// returns the number resumed; unreadable checkpoints are skipped and
// reported in the joined error without aborting the rest.
func (m *Manager) Resume() (int, error) {
	ids, err := m.store.List()
	if err != nil {
		return 0, err
	}
	sort.Strings(ids)
	var (
		resumed int
		errs    []error
	)
	for _, id := range ids {
		if m.owned != nil && !m.owned(id) {
			continue // a fleet peer's checkpoint in a shared store
		}
		if m.max > 0 && m.Count() >= m.max {
			errs = append(errs, fmt.Errorf("checkpoint %s not resumed: %w", id, ErrFull))
			continue
		}
		data, err := m.store.Load(id)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		s, err := resumeSession(data, m.wh, m.met, m.tc, m.res, m.spn)
		if err != nil {
			errs = append(errs, fmt.Errorf("checkpoint %s: %w", id, err))
			continue
		}
		if s.Health() != HealthHealthy {
			m.met.degradedSessions.Inc()
		}
		m.mu.Lock()
		if _, exists := m.sessions[id]; exists {
			m.mu.Unlock()
			errs = append(errs, fmt.Errorf("checkpoint %s collides with a live session: %w", id, ErrConflict))
			continue
		}
		m.sessions[id] = s
		m.mu.Unlock()
		m.met.sessionsResumed.Inc()
		m.log.Info("session resumed", "id", id, "step", s.Info().Step)
		resumed++
	}
	return resumed, errors.Join(errs...)
}

// SetOwned installs the fleet ownership predicate consulted by Resume;
// call it once at daemon startup, before Resume. A nil predicate (the
// default) resumes everything in the store.
func (m *Manager) SetOwned(fn func(id string) bool) { m.owned = fn }

// ResumeOne lazily resumes a single checkpoint from the store into a live
// session, returning whether it did. The fleet router calls it when a
// request for an unknown session maps to this shard: after a peer dies,
// its sessions' write-through checkpoints are still in the shared store,
// so the new owner picks each one up on first touch. Concurrent calls for
// the same id are collapsed by the reservation; losers see ErrConflict
// exactly like a racing Create and simply retry.
func (m *Manager) ResumeOne(id string) (bool, error) {
	if err := ValidateID(id); err != nil {
		return false, err
	}
	m.mu.Lock()
	if _, exists := m.sessions[id]; exists {
		m.mu.Unlock()
		return false, nil // already live (or being created/resumed)
	}
	if m.max > 0 && len(m.sessions) >= m.max {
		m.mu.Unlock()
		return false, fmt.Errorf("%d sessions live: %w", m.max, ErrFull)
	}
	m.sessions[id] = nil // reserve
	m.mu.Unlock()

	data, err := m.store.Load(id)
	if err == nil {
		var s *Session
		s, err = resumeSession(data, m.wh, m.met, m.tc, m.res, m.spn)
		if err == nil && s.ID() != id {
			s.Close()
			err = fmt.Errorf("checkpoint %s carries session id %s: %w", id, s.ID(), ErrInvalid)
		}
		if err == nil {
			if s.Health() != HealthHealthy {
				m.met.degradedSessions.Inc()
			}
			m.mu.Lock()
			m.sessions[id] = s
			m.mu.Unlock()
			m.met.sessionsResumed.Inc()
			m.log.Info("session resumed on failover", "id", id, "step", s.Info().Step)
			return true, nil
		}
	}
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
	return false, err
}

// BeginDrain freezes the session for checkpoint handoff and returns its
// snapshot. Until CompleteDrain or AbortDrain, suggest/observe on it fail
// with ErrDraining. ErrConflict covers a drain already in flight.
func (m *Manager) BeginDrain(id string) ([]byte, error) {
	s, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	if !s.beginDrain() {
		return nil, fmt.Errorf("session %s is already draining: %w", id, ErrConflict)
	}
	data, err := s.Checkpoint()
	if err != nil {
		s.endDrain()
		return nil, err
	}
	return data, nil
}

// AbortDrain unfreezes a session after a failed handoff.
func (m *Manager) AbortDrain(id string) {
	if s, err := m.Get(id); err == nil {
		s.endDrain()
	}
}

// CompleteDrain finishes a handoff whose snapshot the new owner accepted:
// the session is closed and evicted from memory. Its store entry is left
// alone — with a shared store the adopter has already overwritten it, and
// with per-node stores the stale donor copy is harmless because the ring
// no longer routes the id here.
func (m *Manager) CompleteDrain(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok && s != nil {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if !ok || s == nil {
		return fmt.Errorf("session %s: %w", id, ErrNotFound)
	}
	if s.Health() != HealthHealthy {
		m.met.degradedSessions.Dec()
	}
	s.Close()
	m.log.Info("session migrated out", "id", id)
	return nil
}

// Adopt installs a checkpoint handed off by a fleet peer as a live session
// and persists it locally. The snapshot is verified before anything is
// registered, so a corrupt or non-finite handoff can never poison this
// shard.
func (m *Manager) Adopt(id string, data []byte) (SessionInfo, error) {
	if err := ValidateID(id); err != nil {
		return SessionInfo{}, err
	}
	if err := VerifyCheckpoint(data); err != nil {
		return SessionInfo{}, fmt.Errorf("adopt %s: %v: %w", id, err, ErrInvalid)
	}
	m.mu.Lock()
	if _, exists := m.sessions[id]; exists {
		m.mu.Unlock()
		return SessionInfo{}, fmt.Errorf("session %s already exists: %w", id, ErrConflict)
	}
	if m.max > 0 && len(m.sessions) >= m.max {
		m.mu.Unlock()
		return SessionInfo{}, fmt.Errorf("%d sessions live: %w", len(m.sessions), ErrFull)
	}
	m.sessions[id] = nil // reserve
	m.mu.Unlock()

	s, err := resumeSession(data, m.wh, m.met, m.tc, m.res, m.spn)
	if err == nil && s.ID() != id {
		s.Close()
		err = fmt.Errorf("adopt %s: checkpoint carries session id %s: %w", id, s.ID(), ErrInvalid)
	}
	if err == nil {
		err = m.checkpoint(s)
		if err != nil {
			s.Close()
		}
	}
	m.mu.Lock()
	if err != nil {
		delete(m.sessions, id)
		m.mu.Unlock()
		m.log.Warn("session adopt failed", "id", id, "err", err)
		return SessionInfo{}, err
	}
	m.sessions[id] = s
	m.mu.Unlock()
	if s.Health() != HealthHealthy {
		m.met.degradedSessions.Inc()
	}
	m.log.Info("session adopted", "id", id, "step", s.Info().Step)
	return s.Info(), nil
}

// snapshotSessions returns the live sessions without holding the lock
// while touching them.
func (m *Manager) snapshotSessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}
