package service

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store persists session checkpoints keyed by session id. Implementations
// must be safe for concurrent use; Load of a missing id returns
// ErrNotFound.
type Store interface {
	Save(id string, data []byte) error
	Load(id string) ([]byte, error)
	List() ([]string, error)
	Delete(id string) error
}

// ckptExt is the filename extension used by FSStore.
const ckptExt = ".ckpt"

// FSStore keeps one checkpoint file per session under a directory. Writes
// go to a temp file first and are renamed into place, so a crash mid-write
// never corrupts the previous checkpoint, and a concurrent List only ever
// observes whole checkpoints: in-flight temp files carry a ".tmp-" infix
// that List filters out, and the rename that publishes a checkpoint is
// atomic.
type FSStore struct {
	dir string
	mu  sync.Mutex
}

// NewFSStore creates (if needed) the directory and returns a store over it.
// Temp files orphaned by a crash mid-Save are swept on open; they were
// never visible to List and their sessions' previous checkpoints, if any,
// are intact.
func NewFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: store dir: %w", err)
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.Contains(e.Name(), tmpInfix) {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return &FSStore{dir: dir}, nil
}

// tmpInfix marks in-flight Save temp files so List can exclude them and
// NewFSStore can sweep crash leftovers.
const tmpInfix = ".tmp-"

// Dir returns the backing directory.
func (s *FSStore) Dir() string { return s.dir }

func (s *FSStore) path(id string) string {
	return filepath.Join(s.dir, id+ckptExt)
}

// Save atomically and durably writes the checkpoint for id: the temp file
// is fsynced before the rename, and the directory is fsynced after, so the
// new checkpoint (content and name) survives a power loss — not just a
// process crash.
func (s *FSStore) Save(id string, data []byte) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, id+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: save checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("service: save checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("service: save checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: save checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		return fmt.Errorf("service: save checkpoint: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("service: save checkpoint: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry in it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Load reads the checkpoint for id.
func (s *FSStore) Load(id string) ([]byte, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.path(id))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("service: checkpoint %s: %w", id, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("service: load checkpoint: %w", err)
	}
	return data, nil
}

// List returns the ids of all stored checkpoints. It is safe against
// concurrent Saves: temp files never match, and every returned id names a
// checkpoint that was fully written and renamed into place (a subsequent
// Load may still race a Delete and report ErrNotFound — callers skip
// those).
func (s *FSStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("service: list checkpoints: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ckptExt) || strings.Contains(name, tmpInfix) {
			continue
		}
		id := strings.TrimSuffix(name, ckptExt)
		if ValidateID(id) != nil {
			continue // foreign file in the store dir, not one of ours
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Delete removes the checkpoint for id; deleting a missing id is not an
// error. Taking the store lock serializes it against an in-flight Save's
// temp-write/rename pair, so a delete never lands between them and leaves
// the just-renamed checkpoint resurrected.
func (s *FSStore) Delete(id string) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("service: delete checkpoint: %w", err)
	}
	return nil
}

// MemStore is an in-memory Store for tests and ephemeral daemons.
type MemStore struct {
	mu   sync.Mutex
	data map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// Save stores a copy of data under id.
func (s *MemStore) Save(id string, data []byte) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[id] = append([]byte(nil), data...)
	return nil
}

// Load returns a copy of the checkpoint for id.
func (s *MemStore) Load(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.data[id]
	if !ok {
		return nil, fmt.Errorf("service: checkpoint %s: %w", id, ErrNotFound)
	}
	return append([]byte(nil), d...), nil
}

// List returns all stored ids.
func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.data))
	for id := range s.data {
		ids = append(ids, id)
	}
	return ids, nil
}

// Delete removes the checkpoint for id.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, id)
	return nil
}

// ValidateID rejects ids that are empty, overlong, or contain characters
// outside [A-Za-z0-9._-]; this keeps FSStore paths safe by construction.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("service: empty session id: %w", ErrInvalid)
	}
	if len(id) > 128 {
		return fmt.Errorf("service: session id longer than 128 bytes: %w", ErrInvalid)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("service: session id %q contains %q: %w", id, r, ErrInvalid)
		}
	}
	if id[0] == '.' {
		return fmt.Errorf("service: session id %q starts with '.': %w", id, ErrInvalid)
	}
	return nil
}
