package service

import (
	"deepcat/internal/obs"
)

// metrics holds the daemon's service-level instruments. It is always
// non-nil on a Manager; built over a nil registry every instrument is nil
// and every recording site degenerates to a nil check, so a daemon run
// without -metrics-addr pays nothing for the layer.
type metrics struct {
	reg *obs.Registry

	// Session lifecycle.
	sessionsCreated *obs.Counter
	sessionsResumed *obs.Counter
	sessionsDeleted *obs.Counter
	warmStarts      *obs.Counter

	// Tuning hot path: how long the agent takes to recommend and to learn.
	suggestDur *obs.Histogram
	observeDur *obs.Histogram

	// Twin-Q Optimizer economics: candidates scored beyond the raw actor
	// output, and raw recommendations rejected as sub-optimal. The ratio
	// rejections/suggests is the fraction of configurations DeepCAT refused
	// to pay a cluster run for.
	twinqCandidates *obs.Counter
	twinqRejections *obs.Counter

	// Checkpoint write-through cost after every observation.
	checkpointDur   *obs.Histogram
	checkpointBytes *obs.Counter

	// Fault handling: observations the sanitizer quarantined, circuit
	// breaker trips and recoveries, last-known-good suggestions served
	// while degraded, and the number of currently degraded sessions.
	quarantined       *obs.Counter
	breakerTrips      *obs.Counter
	breakerRecoveries *obs.Counter
	degradedSuggests  *obs.Counter
	degradedSessions  *obs.Gauge

	// Actor/learner spine: policy-weight adoptions across all sessions.
	spineAdoptions *obs.Counter

	// Fleet routing: requests bounced to their owning shard (by mode),
	// checkpoint handoffs in each direction, and sessions lazily resumed
	// from the shared store after a peer died.
	fleetRedirects       *obs.Counter
	fleetProxied         *obs.Counter
	fleetMigrationsOut   *obs.Counter
	fleetMigrationsIn    *obs.Counter
	fleetFailoverResumes *obs.Counter
}

// newMetrics registers the service instruments on reg (nil for no-op).
func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:             reg,
		sessionsCreated: reg.Counter("deepcat_sessions_created_total"),
		sessionsResumed: reg.Counter("deepcat_sessions_resumed_total"),
		sessionsDeleted: reg.Counter("deepcat_sessions_deleted_total"),
		warmStarts:      reg.Counter("deepcat_sessions_warm_started_total"),
		suggestDur:      reg.Histogram("deepcat_suggest_duration_seconds", nil),
		observeDur:      reg.Histogram("deepcat_observe_duration_seconds", nil),
		twinqCandidates: reg.Counter("deepcat_twinq_candidates_total"),
		twinqRejections: reg.Counter("deepcat_twinq_rejections_total"),
		checkpointDur:   reg.Histogram("deepcat_checkpoint_duration_seconds", nil),
		checkpointBytes: reg.Counter("deepcat_checkpoint_bytes_total"),

		quarantined:       reg.Counter("deepcat_observations_quarantined_total"),
		breakerTrips:      reg.Counter("deepcat_breaker_trips_total"),
		breakerRecoveries: reg.Counter("deepcat_breaker_recoveries_total"),
		degradedSuggests:  reg.Counter("deepcat_degraded_suggests_total"),
		degradedSessions:  reg.Gauge("deepcat_degraded_sessions"),

		spineAdoptions: reg.Counter("deepcat_spine_adoptions_total"),

		fleetRedirects:       reg.Counter("deepcat_fleet_forwards_total", "mode", "redirect"),
		fleetProxied:         reg.Counter("deepcat_fleet_forwards_total", "mode", "proxy"),
		fleetMigrationsOut:   reg.Counter("deepcat_fleet_migrations_total", "direction", "out"),
		fleetMigrationsIn:    reg.Counter("deepcat_fleet_migrations_total", "direction", "in"),
		fleetFailoverResumes: reg.Counter("deepcat_fleet_failover_resumes_total"),
	}
}

// httpMetrics instruments one endpoint's request handling; the Server
// resolves these per route at construction so the per-request cost is two
// map-free atomic updates.
type httpMetrics struct {
	inFlight *obs.Gauge
	dur      *obs.Histogram
	requests func(code string) *obs.Counter
	// shed counts requests rejected before their handler ran, labelled by
	// why: "admission" (the AIMD limiter said no) or "deadline" (the
	// budget could not cover the endpoint's observed p99).
	shed func(reason string) *obs.Counter
}

// newHTTPMetrics builds the instruments for one endpoint label.
func newHTTPMetrics(reg *obs.Registry, endpoint string) httpMetrics {
	return httpMetrics{
		inFlight: reg.Gauge("deepcat_http_in_flight_requests"),
		dur:      reg.Histogram("deepcat_http_request_duration_seconds", nil, "endpoint", endpoint),
		requests: func(code string) *obs.Counter {
			return reg.Counter("deepcat_http_requests_total", "endpoint", endpoint, "code", code)
		},
		shed: func(reason string) *obs.Counter {
			return reg.Counter("deepcat_shed_total", "endpoint", endpoint, "reason", reason)
		},
	}
}
