package service

import (
	"errors"
	"sort"
	"testing"
)

func testStores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"fs": fs, "mem": NewMemStore()}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Load("absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load(absent) = %v, want ErrNotFound", err)
			}
			if err := s.Save("a", []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := s.Save("b", []byte("two")); err != nil {
				t.Fatal(err)
			}
			if err := s.Save("a", []byte("one-v2")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Load("a")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "one-v2" {
				t.Fatalf("Load(a) = %q, want %q", got, "one-v2")
			}
			ids, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(ids)
			if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
				t.Fatalf("List() = %v, want [a b]", ids)
			}
			if err := s.Delete("a"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Load("a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load after delete = %v, want ErrNotFound", err)
			}
			// Deleting a missing checkpoint is idempotent.
			if err := s.Delete("a"); err != nil {
				t.Fatalf("second Delete = %v", err)
			}
		})
	}
}

func TestValidateID(t *testing.T) {
	for _, id := range []string{"s-1", "job_42", "A.b-C_9"} {
		if err := ValidateID(id); err != nil {
			t.Errorf("ValidateID(%q) = %v", id, err)
		}
	}
	bad := []string{"", ".hidden", "a/b", "../x", "a b", "ü", string(make([]byte, 129))}
	for _, id := range bad {
		if err := ValidateID(id); !errors.Is(err, ErrInvalid) {
			t.Errorf("ValidateID(%q) = %v, want ErrInvalid", id, err)
		}
	}
}
