package service

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

func testStores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"fs": fs, "mem": NewMemStore()}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Load("absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load(absent) = %v, want ErrNotFound", err)
			}
			if err := s.Save("a", []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := s.Save("b", []byte("two")); err != nil {
				t.Fatal(err)
			}
			if err := s.Save("a", []byte("one-v2")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Load("a")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "one-v2" {
				t.Fatalf("Load(a) = %q, want %q", got, "one-v2")
			}
			ids, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(ids)
			if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
				t.Fatalf("List() = %v, want [a b]", ids)
			}
			if err := s.Delete("a"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Load("a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load after delete = %v, want ErrNotFound", err)
			}
			// Deleting a missing checkpoint is idempotent.
			if err := s.Delete("a"); err != nil {
				t.Fatalf("second Delete = %v", err)
			}
		})
	}
}

func TestValidateID(t *testing.T) {
	for _, id := range []string{"s-1", "job_42", "A.b-C_9"} {
		if err := ValidateID(id); err != nil {
			t.Errorf("ValidateID(%q) = %v", id, err)
		}
	}
	bad := []string{"", ".hidden", "a/b", "../x", "a b", "ü", string(make([]byte, 129))}
	for _, id := range bad {
		if err := ValidateID(id); !errors.Is(err, ErrInvalid) {
			t.Errorf("ValidateID(%q) = %v, want ErrInvalid", id, err)
		}
	}
}

// TestFSStoreConcurrentListDuringSave hammers Save, Delete and List
// together: List must never surface an in-flight temp file or a partial
// name, and everything it lists must load as a complete checkpoint.
func TestFSStoreConcurrentListDuringSave(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("deepcat"), 1024)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("hammer-%d", w)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if err := s.Save(id, payload); err != nil {
					t.Error(err)
					return
				}
				if i%8 == 7 {
					if err := s.Delete(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		ids, err := s.List()
		if err != nil {
			t.Fatalf("List during writes: %v", err)
		}
		for _, id := range ids {
			if strings.Contains(id, tmpInfix) || ValidateID(id) != nil {
				t.Fatalf("List leaked a non-checkpoint name %q", id)
			}
			data, err := s.Load(id)
			if errors.Is(err, ErrNotFound) {
				continue // raced a Delete; fine
			}
			if err != nil {
				t.Fatalf("Load(%s) during writes: %v", id, err)
			}
			if len(data) != len(payload) {
				t.Fatalf("Load(%s) returned %d bytes, want %d (torn write visible)", id, len(data), len(payload))
			}
		}
	}
	close(done)
	wg.Wait()
}

// TestFSStoreSweepsOrphanTempFiles proves a crash mid-Save leaves nothing
// behind: the orphaned temp file is invisible to List and removed by the
// next open.
func TestFSStoreSweepsOrphanTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("real", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "real.tmp-123456")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "real" {
		t.Fatalf("List with orphan present = %v, want [real]", ids)
	}
	if _, err := NewFSStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp file survived reopen: %v", err)
	}
	data, err := s.Load("real")
	if err != nil || string(data) != "ok" {
		t.Fatalf("previous checkpoint damaged by sweep: %q, %v", data, err)
	}
}
