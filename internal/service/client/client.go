// Package client is the typed Go client for the deepcat-serve HTTP API.
// External schedulers written in Go use it instead of hand-rolling JSON;
// the end-to-end service tests drive a real daemon through it.
package client

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"deepcat/internal/obs"
	"deepcat/internal/service"
	"deepcat/internal/trace"
)

// ErrBudgetExhausted marks a call abandoned because its context deadline
// budget cannot cover another attempt: either the computed backoff (or
// the server's Retry-After demand) extends past the deadline, or the
// budget was already spent. It always wraps the last attempt's error, so
// errors.As still extracts the *APIError underneath. Callers treat it as
// terminal — retrying the same call with the same budget would only burn
// the backoff schedule to reach the same place.
var ErrBudgetExhausted = errors.New("deadline budget exhausted")

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	Status  int
	Message string
	// RequestID is the X-Request-Id of the failed call (the client mints
	// one per call and every fleet hop adopts it); quote it when filing a
	// report so the operator can find the matching server-side log line and
	// histogram sample on any shard.
	RequestID string
	// Shard is the fleet shard that actually served the response (the
	// X-Deepcat-Shard header) — for a proxied call that is the owner behind
	// the node the client talked to. Empty against a standalone daemon.
	Shard string
	// RetryAfter is the server's Retry-After hint, if it sent one (both the
	// delay-seconds and HTTP-date forms are understood); zero otherwise.
	// The retry loop prefers it over its own computed backoff.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *APIError) Error() string {
	detail := ""
	switch {
	case e.RequestID != "" && e.Shard != "":
		detail = fmt.Sprintf(" (request_id %s, shard %s)", e.RequestID, e.Shard)
	case e.RequestID != "":
		detail = fmt.Sprintf(" (request_id %s)", e.RequestID)
	case e.Shard != "":
		detail = fmt.Sprintf(" (shard %s)", e.Shard)
	}
	return fmt.Sprintf("service: HTTP %d: %s%s", e.Status, e.Message, detail)
}

// RetryPolicy controls how the client retries transient failures: network
// errors (connection refused/reset, timeouts) and HTTP 429/502/503/504.
// Other statuses — including every 4xx the daemon emits for caller mistakes —
// are returned immediately. Backoff is exponential from BaseDelay, capped at
// MaxDelay, with up to Jitter fraction of each delay randomized away so a
// fleet of schedulers hammered off the same failure doesn't retry in
// lockstep.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values <= 1 disable retrying.
	MaxAttempts int
	// BaseDelay is the wait before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff.
	MaxDelay time.Duration
	// Jitter in [0,1] is the fraction of each delay drawn uniformly at
	// random and subtracted from it.
	Jitter float64
}

// DefaultRetryPolicy is what New installs: 4 attempts, 50ms → 2s backoff,
// half-jittered.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.5}
}

// delay returns the backoff before retry number n (n >= 1).
func (p RetryPolicy) delay(n int) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0 guards shift overflow
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		d -= time.Duration(p.Jitter * rand.Float64() * float64(d))
	}
	return d
}

// maxRetryAfter bounds how long the client will honor a server-supplied
// Retry-After, so a misconfigured daemon or proxy cannot stall a scheduler
// for minutes on one call.
const maxRetryAfter = 30 * time.Second

// parseRetryAfter reads a Retry-After header value in either RFC 9110
// form — delay seconds or an HTTP-date — returning 0 when absent, already
// past, or malformed.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// retriableStatus reports whether an HTTP status is worth retrying: the
// daemon at capacity (503 from ErrFull), rate limiting, or a gateway in
// front of it flapping.
func retriableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Client talks to one deepcat-serve daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 30 s timeout.
	HTTPClient *http.Client
	// Retry governs transient-failure retries; the zero value disables
	// them.
	Retry RetryPolicy
	// Log, when set, records one debug line per call carrying the
	// call's X-Request-Id, so a slow suggest seen here can be correlated
	// with the daemon's own access log and latency histograms. Nil disables
	// client-side logging.
	Log *obs.Logger
	// TraceContext, when Valid, is the root trace context: every call
	// derives its per-call context as a child of it, so a scheduler can
	// group one tuning step's suggest and observe — and every fleet hop
	// they touch — under a single trace id for cmd/deepcat-trace to stitch.
	// The zero value mints an independent trace per call instead.
	TraceContext trace.SpanContext
}

// newClientRequestID mints the per-call correlation id the client sends as
// X-Request-Id; every fleet hop adopts it, so client logs and all shard
// logs share one id per logical call (retries included).
func newClientRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "c-" + hex.EncodeToString(b[:])
}

// callContext derives the trace context for one logical call: a child of
// c.TraceContext when set, a fresh root otherwise. Ids come from
// crypto/rand — propagation never touches any tuner's seeded randomness.
func (c *Client) callContext() trace.SpanContext {
	if c.TraceContext.Valid() {
		return c.TraceContext.Child()
	}
	return trace.NewSpanContext()
}

// New returns a client for the daemon at baseURL with the default retry
// policy.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
		Retry:      DefaultRetryPolicy(),
	}
}

// do sends a request with optional JSON body `in`, decoding a 2xx response
// into `out` (may be nil) and any other status into an *APIError. Transient
// failures are retried per c.Retry; the body is marshalled once and replayed
// on each attempt. Cancelling ctx stops the call immediately — including
// mid-backoff, so a scheduler tearing down 10k sessions is never held
// hostage by their pending retry sleeps.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	// One trace context and request id per logical call, shared by every
	// retry attempt (and preserved by Go's transport across 307 redirects),
	// so all hops and attempts of one call stitch under one identity.
	sc := c.callContext()
	reqID := newClientRequestID()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			delay := c.retryDelay(attempt-1, lastErr)
			// Budget-aware retry: when the context carries a deadline and
			// the next wait would outlive it, stop now with a typed error
			// instead of sleeping into certain failure. This is also what
			// makes a 429 whose Retry-After lands beyond the budget
			// terminal — retryDelay already adopted the server's demand.
			if dl, ok := ctx.Deadline(); ok {
				if rem := time.Until(dl); rem <= delay {
					return fmt.Errorf("client: %s %s: %w: next retry in %s exceeds remaining budget %s: %w",
						method, path, ErrBudgetExhausted, delay.Round(time.Millisecond),
						rem.Round(time.Millisecond), lastErr)
				}
			}
			if err := sleepCtx(ctx, delay); err != nil {
				return fmt.Errorf("client: %s %s: %w (last attempt: %v)", method, path, err, lastErr)
			}
		}
		err, retriable := c.doOnce(ctx, method, path, in != nil, data, out, sc, reqID)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retriable || ctx.Err() != nil {
			break
		}
	}
	return lastErr
}

// sleepCtx waits for d unless ctx ends first, returning ctx's error when it
// does.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryDelay picks the wait before retry n: when the last failure carried
// a Retry-After hint the server's word wins (capped at maxRetryAfter, no
// jitter — the server already knows when it wants the traffic back);
// otherwise the policy's exponential backoff applies.
func (c *Client) retryDelay(n int, lastErr error) time.Duration {
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 {
		if apiErr.RetryAfter > maxRetryAfter {
			return maxRetryAfter
		}
		return apiErr.RetryAfter
	}
	return c.Retry.delay(n)
}

// doOnce performs a single attempt, reporting whether a failure is
// transient and worth retrying. sc and reqID are the call's propagated
// trace context and correlation id; the transport re-sends both headers
// when the fleet answers 307, so the owner shard sees the same identity.
func (c *Client) doOnce(ctx context.Context, method, path string, hasBody bool, data []byte, out any, sc trace.SpanContext, reqID string) (err error, retriable bool) {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("client: build request: %w", err), false
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(trace.TraceparentHeader, sc.Traceparent())
	req.Header.Set("X-Request-Id", reqID)
	// Deadline propagation: tell the server how much budget this attempt
	// actually has, so it can reject up front (504) when the endpoint's
	// observed tail latency would blow it anyway. Stamped per attempt —
	// retries of one call carry their shrinking remainder, and every
	// fleet hop decrements it further.
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(service.DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		c.Log.Debug("request error", "request_id", reqID, "method", method, "path", path, "err", err)
		return fmt.Errorf("client: %s %s: %w", method, path, err), true
	}
	defer resp.Body.Close()
	if v := resp.Header.Get("X-Request-Id"); v != "" {
		reqID = v // a pre-propagation daemon may still mint its own
	}
	shard := resp.Header.Get("X-Deepcat-Shard")
	c.Log.Debug("request", "request_id", reqID, "method", method, "path", path,
		"shard", shard, "code", resp.StatusCode, "dur", time.Since(start))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env service.ErrorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&env) == nil && env.Error != "" {
			msg = env.Error
		}
		return &APIError{
			Status:     resp.StatusCode,
			Message:    msg,
			RequestID:  reqID,
			Shard:      shard,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}, retriableStatus(resp.StatusCode)
	}
	if out == nil {
		return nil, false
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err), false
	}
	return nil, false
}

// Health checks the daemon's liveness endpoint.
func (c *Client) Health() (service.HealthResponse, error) {
	var h service.HealthResponse
	err := c.do(context.Background(), http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Ready checks the daemon's readiness endpoint; a not-ready daemon answers
// 503, surfaced as an *APIError alongside the decoded body.
func (c *Client) Ready(ctx context.Context) (service.ReadyResponse, error) {
	var resp service.ReadyResponse
	err := c.do(ctx, http.MethodGet, "/v1/readyz", nil, &resp)
	return resp, err
}

// Ring fetches fleet membership and per-peer readiness as seen by this
// daemon; a standalone daemon answers 404.
func (c *Client) Ring(ctx context.Context) (service.RingResponse, error) {
	var resp service.RingResponse
	err := c.do(ctx, http.MethodGet, "/v1/fleet/ring", nil, &resp)
	return resp, err
}

// Migrate drains a session and hands it to the fleet member at target.
func (c *Client) Migrate(ctx context.Context, id, target string) (service.MigrateResponse, error) {
	var resp service.MigrateResponse
	path := "/v1/fleet/migrate/" + id
	if target != "" {
		path += "?target=" + url.QueryEscape(target)
	}
	err := c.do(ctx, http.MethodPost, path, nil, &resp)
	return resp, err
}

// CreateSession opens a tuning session.
func (c *Client) CreateSession(req service.CreateSessionRequest) (service.SessionInfo, error) {
	return c.CreateSessionCtx(context.Background(), req)
}

// CreateSessionCtx opens a tuning session under ctx.
func (c *Client) CreateSessionCtx(ctx context.Context, req service.CreateSessionRequest) (service.SessionInfo, error) {
	var info service.SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Session fetches one session's state.
func (c *Client) Session(id string) (service.SessionInfo, error) {
	var info service.SessionInfo
	err := c.do(context.Background(), http.MethodGet, "/v1/sessions/"+id, nil, &info)
	return info, err
}

// Sessions lists every live session.
func (c *Client) Sessions() ([]service.SessionInfo, error) {
	var infos []service.SessionInfo
	err := c.do(context.Background(), http.MethodGet, "/v1/sessions", nil, &infos)
	return infos, err
}

// DeleteSession closes a session and drops its checkpoint.
func (c *Client) DeleteSession(id string) error {
	return c.DeleteSessionCtx(context.Background(), id)
}

// DeleteSessionCtx closes a session and drops its checkpoint under ctx.
func (c *Client) DeleteSessionCtx(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Suggest asks for the session's next configuration.
func (c *Client) Suggest(id string) (service.SuggestResponse, error) {
	return c.SuggestCtx(context.Background(), id)
}

// SuggestCtx asks for the session's next configuration under ctx.
func (c *Client) SuggestCtx(ctx context.Context, id string) (service.SuggestResponse, error) {
	var resp service.SuggestResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/suggest", nil, &resp)
	return resp, err
}

// Observe reports the measured outcome of a suggestion.
func (c *Client) Observe(id string, req service.ObserveRequest) (service.ObserveResponse, error) {
	return c.ObserveCtx(context.Background(), id, req)
}

// ObserveCtx reports the measured outcome of a suggestion under ctx.
func (c *Client) ObserveCtx(ctx context.Context, id string, req service.ObserveRequest) (service.ObserveResponse, error) {
	var resp service.ObserveResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/observe", req, &resp)
	return resp, err
}

// Trace fetches up to n of the session's most recent flight-recorder
// events (n <= 0 fetches everything buffered).
func (c *Client) Trace(id string, n int) (service.TraceResponse, error) {
	var resp service.TraceResponse
	path := "/v1/sessions/" + id + "/trace"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	err := c.do(context.Background(), http.MethodGet, path, nil, &resp)
	return resp, err
}

// TraceExport fetches the session's trace in the named export format
// ("chrome" is the only one today) as raw bytes, ready to write to a file
// and load in Perfetto.
func (c *Client) TraceExport(id, format string) ([]byte, error) {
	var raw json.RawMessage
	path := "/v1/sessions/" + id + "/trace/export"
	if format != "" {
		path += "?format=" + url.QueryEscape(format)
	}
	err := c.do(context.Background(), http.MethodGet, path, nil, &raw)
	return []byte(raw), err
}

// MetricsSnapshot fetches one daemon's registry as a mergeable snapshot.
func (c *Client) MetricsSnapshot(ctx context.Context) (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/metrics/snapshot", nil, &snap)
	return snap, err
}

// FleetMetrics fetches the fleet-wide aggregated metrics view: per-shard
// snapshots plus the merged registry with availability annotations. A
// standalone daemon answers 404; fall back to MetricsSnapshot there.
func (c *Client) FleetMetrics(ctx context.Context) (service.FleetMetricsResponse, error) {
	var resp service.FleetMetricsResponse
	err := c.do(ctx, http.MethodGet, "/v1/fleet/metrics?format=json", nil, &resp)
	return resp, err
}

// WarehouseStats fetches the daemon's experience-warehouse summary.
func (c *Client) WarehouseStats() (service.WarehouseStatsResponse, error) {
	var resp service.WarehouseStatsResponse
	err := c.do(context.Background(), http.MethodGet, "/v1/warehouse/stats", nil, &resp)
	return resp, err
}

// Donors lists the donor generations of one workload family.
func (c *Client) Donors(signature string) (service.DonorListResponse, error) {
	var resp service.DonorListResponse
	err := c.do(context.Background(), http.MethodGet, "/v1/warehouse/families/"+signature+"/donors", nil, &resp)
	return resp, err
}
