// Package client is the typed Go client for the deepcat-serve HTTP API.
// External schedulers written in Go use it instead of hand-rolling JSON;
// the end-to-end service tests drive a real daemon through it.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"deepcat/internal/service"
)

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	Status  int
	Message string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Message)
}

// Client talks to one deepcat-serve daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 30 s timeout.
	HTTPClient *http.Client
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
	}
}

// do sends a request with optional JSON body `in`, decoding a 2xx response
// into `out` (may be nil) and any other status into an *APIError.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env service.ErrorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&env) == nil && env.Error != "" {
			msg = env.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// Health checks the daemon's liveness endpoint.
func (c *Client) Health() (service.HealthResponse, error) {
	var h service.HealthResponse
	err := c.do(http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// CreateSession opens a tuning session.
func (c *Client) CreateSession(req service.CreateSessionRequest) (service.SessionInfo, error) {
	var info service.SessionInfo
	err := c.do(http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Session fetches one session's state.
func (c *Client) Session(id string) (service.SessionInfo, error) {
	var info service.SessionInfo
	err := c.do(http.MethodGet, "/v1/sessions/"+id, nil, &info)
	return info, err
}

// Sessions lists every live session.
func (c *Client) Sessions() ([]service.SessionInfo, error) {
	var infos []service.SessionInfo
	err := c.do(http.MethodGet, "/v1/sessions", nil, &infos)
	return infos, err
}

// DeleteSession closes a session and drops its checkpoint.
func (c *Client) DeleteSession(id string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Suggest asks for the session's next configuration.
func (c *Client) Suggest(id string) (service.SuggestResponse, error) {
	var resp service.SuggestResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+id+"/suggest", nil, &resp)
	return resp, err
}

// Observe reports the measured outcome of a suggestion.
func (c *Client) Observe(id string, req service.ObserveRequest) (service.ObserveResponse, error) {
	var resp service.ObserveResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+id+"/observe", req, &resp)
	return resp, err
}
