package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"deepcat/internal/obs"
	"deepcat/internal/service"
)

// fastRetry keeps the tests quick while still exercising the backoff path.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Jitter: 0.5}
}

// flakyHandler fails the first n requests with status, then serves a
// healthy /healthz body.
func flakyHandler(n int64, status int) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			http.Error(w, "transient", status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","sessions":1,"max_sessions":8}`))
	})
	return h, &calls
}

func TestRetryRecoversFromTransientStatus(t *testing.T) {
	h, calls := flakyHandler(2, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry(4)
	health, err := c.Health()
	if err != nil {
		t.Fatalf("Health after retries: %v", err)
	}
	if health.Status != "ok" || health.Sessions != 1 {
		t.Fatalf("unexpected health body: %+v", health)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + 1 success)", got)
	}
}

// flakyTransport fails the first n round trips at the network layer, then
// delegates to the real transport.
type flakyTransport struct {
	calls atomic.Int64
	n     int64
	next  http.RoundTripper
}

func (t *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if t.calls.Add(1) <= t.n {
		return nil, errors.New("connection reset by peer")
	}
	return t.next.RoundTrip(r)
}

func TestRetryRecoversFromNetworkError(t *testing.T) {
	h, served := flakyHandler(0, 0)
	srv := httptest.NewServer(h)
	defer srv.Close()

	ft := &flakyTransport{n: 2, next: http.DefaultTransport}
	c := New(srv.URL)
	c.Retry = fastRetry(4)
	c.HTTPClient = &http.Client{Transport: ft, Timeout: time.Second}

	health, err := c.Health()
	if err != nil {
		t.Fatalf("Health after network-error retries: %v", err)
	}
	if health.Status != "ok" {
		t.Fatalf("unexpected health body: %+v", health)
	}
	if got := ft.calls.Load(); got != 3 {
		t.Fatalf("transport saw %d round trips, want 3", got)
	}
	if got := served.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

func TestRetryDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"bad workload"}`))
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry(4)
	_, err := c.CreateSession(service.CreateSessionRequest{Workload: "nope"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if apiErr.Message != "bad workload" {
		t.Fatalf("error envelope not decoded: %q", apiErr.Message)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400 was retried: server saw %d requests", got)
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	h, calls := flakyHandler(100, http.StatusBadGateway)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry(3)
	_, err := c.Health()
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("want 502 APIError after exhaustion, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want exactly MaxAttempts=3", got)
	}
}

func TestRetryDisabledByZeroPolicy(t *testing.T) {
	h, calls := flakyHandler(100, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = RetryPolicy{} // zero value: single attempt
	if _, err := c.Health(); err == nil {
		t.Fatal("expected error from always-failing server")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("zero policy retried: server saw %d requests", got)
	}
}

func TestRetryDelayBounded(t *testing.T) {
	p := DefaultRetryPolicy()
	for n := 1; n < 40; n++ { // far past shift overflow
		d := p.delay(n)
		if d < 0 || d > p.MaxDelay {
			t.Fatalf("delay(%d) = %v out of [0, %v]", n, d, p.MaxDelay)
		}
	}
}

// TestRequestIDSurfaced verifies the X-Request-Id correlation path: the
// server-assigned id lands in the APIError for failed calls and in the
// client's debug log for every call, matching what the daemon logs on its
// end.
func TestRequestIDSurfaced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-Id", "r-deadbeef")
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"nope"}`))
	}))
	defer srv.Close()

	var buf strings.Builder
	c := New(srv.URL)
	c.Log = obs.NewLogger(&buf, obs.LevelDebug)

	if _, err := c.Health(); err != nil {
		t.Fatal(err)
	}
	_, err := c.Session("missing")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.RequestID != "r-deadbeef" {
		t.Fatalf("APIError.RequestID = %q, want r-deadbeef", apiErr.RequestID)
	}
	if !strings.Contains(apiErr.Error(), "r-deadbeef") {
		t.Fatalf("request id missing from error string: %s", apiErr)
	}
	if n := strings.Count(buf.String(), "request_id=r-deadbeef"); n != 2 {
		t.Fatalf("client log mentions the request id %d times, want 2:\n%s", n, buf.String())
	}
}

// TestEndToEndRequestID drives a real daemon and asserts the client-minted
// request id is adopted by the server and echoed back on a failing call, so
// the id the caller logs matches the shard's access log.
func TestEndToEndRequestID(t *testing.T) {
	store, err := service.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewServer(service.NewManager(store, 1)))
	defer srv.Close()

	c := New(srv.URL)
	_, err = c.Session("s-missing")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("want 404 APIError, got %v", err)
	}
	if !strings.HasPrefix(apiErr.RequestID, "c-") {
		t.Fatalf("server did not echo the client-minted request id: %+v", apiErr)
	}
}

// TestRetryAfterHeaderHonored verifies a 429 carrying Retry-After overrides
// the policy's millisecond-scale backoff: the single retry waits the full
// advertised second before succeeding.
func TestRetryAfterHeaderHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rate limited", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","sessions":1,"max_sessions":8}`))
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry(3) // backoff alone would retry within ~4ms
	start := time.Now()
	if _, err := c.Health(); err != nil {
		t.Fatalf("Health after 429: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry after %v, want >= ~1s from Retry-After header", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

// TestParseRetryAfter covers both RFC 9110 header forms plus the malformed
// and stale cases, and the cap applied by retryDelay.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("7"); d != 7*time.Second {
		t.Fatalf("seconds form = %v", d)
	}
	date := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(date); d <= 3*time.Second || d > 5*time.Second {
		t.Fatalf("http-date form = %v, want ~5s", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	for _, v := range []string{"", "-3", "0", "soon", past} {
		if d := parseRetryAfter(v); d != 0 {
			t.Fatalf("parseRetryAfter(%q) = %v, want 0", v, d)
		}
	}

	c := New("http://example.invalid")
	c.Retry = fastRetry(3)
	if d := c.retryDelay(1, &APIError{Status: 429, RetryAfter: time.Hour}); d != maxRetryAfter {
		t.Fatalf("uncapped server delay honored: %v", d)
	}
	if d := c.retryDelay(1, &APIError{Status: 429, RetryAfter: 2 * time.Second}); d != 2*time.Second {
		t.Fatalf("server delay not honored: %v", d)
	}
	if d := c.retryDelay(1, &APIError{Status: 503}); d > 4*time.Millisecond {
		t.Fatalf("hint-free failure ignored policy backoff: %v", d)
	}
}

// TestRetryBackoffHonorsContextCancellation cancels the context while the
// client sleeps out a server-dictated long backoff: the call must return
// the cancellation promptly instead of finishing the sleep.
func TestRetryBackoffHonorsContextCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A Retry-After far beyond the test's patience: only an interrupted
		// backoff sleep lets the client return in time.
		w.Header().Set("Retry-After", "20")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Second, MaxDelay: 20 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	_, err := c.SuggestCtx(ctx, "any")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled call succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in the chain", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %s; the backoff sleep ignored the context", elapsed)
	}
}

// TestRetryStopsWhenContextAlreadyCancelled: a context cancelled between
// attempts must stop the loop before the next network call.
func TestRetryStopsWhenContextAlreadyCancelled(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SuggestCtx(ctx, "any"); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n > 1 {
		t.Fatalf("server saw %d attempts after cancellation, want at most 1", n)
	}
}

// A 429 whose Retry-After demand extends past the context's remaining
// budget is terminal: the client returns ErrBudgetExhausted after a
// single attempt instead of burning the backoff schedule, and the
// underlying *APIError stays extractable.
func TestBudgetExhaustedTerminal(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "60")
		http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry(4)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err := c.Ready(ctx)
	if err == nil {
		t.Fatal("expected error from saturated server")
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("error %v, want ErrBudgetExhausted", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("underlying APIError not extractable from %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (no retries past the budget)", got)
	}
}

// An ordinary backoff that would outlive the remaining budget is equally
// terminal — no Retry-After needed, the computed delay alone disqualifies
// the retry.
func TestBudgetExhaustedByBackoff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL)
	// Base delay far beyond the budget: the first retry is already unaffordable.
	c.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Second, MaxDelay: 2 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Ready(ctx)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("error %v, want ErrBudgetExhausted", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1", got)
	}
}

// A budget generous enough to cover the backoff schedule does not
// suppress retries: transient failures still recover.
func TestBudgetAllowsAffordableRetries(t *testing.T) {
	h, calls := flakyHandler(2, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry(4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready with generous budget: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// Every attempt under a deadline-carrying context stamps the remaining
// budget into X-Deepcat-Deadline; without a deadline the header is absent.
func TestDeadlineHeaderStamped(t *testing.T) {
	var header atomic.Value // string: "" = absent
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header.Store(r.Header.Get(service.DeadlineHeader))
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ready":true,"store":true,"registry":true}`))
	}))
	defer srv.Close()

	c := New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 750*time.Millisecond)
	defer cancel()
	if _, err := c.Ready(ctx); err != nil {
		t.Fatal(err)
	}
	got, _ := header.Load().(string)
	if got == "" {
		t.Fatal("deadline header absent on a deadline-carrying request")
	}
	ms, err := strconv.ParseInt(got, 10, 64)
	if err != nil || ms < 1 || ms > 750 {
		t.Fatalf("deadline header %q, want integer ms in (0, 750]", got)
	}

	if _, err := c.Ready(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, _ = header.Load().(string)
	if got != "" {
		t.Fatalf("deadline header %q on a deadline-free request, want absent", got)
	}
}
