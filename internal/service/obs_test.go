package service_test

import (
	"net/http/httptest"
	"strings"
	"testing"

	"deepcat/internal/obs"
	"deepcat/internal/service"
	"deepcat/internal/service/client"
)

// TestMetricsReflectRoundTrip is the acceptance test for the observability
// layer: after one suggest/observe round-trip through the HTTP API, the
// registry's exposition must show non-zero suggest/observe latency
// histograms, per-endpoint request counts and session counters — the same
// page a Prometheus scrape of deepcat-serve's -metrics-addr would see.
func TestMetricsReflectRoundTrip(t *testing.T) {
	store, err := service.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	manager := service.NewManager(store, 4)
	reg := obs.NewRegistry()
	manager.AttachObs(reg, nil)
	srv := httptest.NewServer(service.NewServer(manager))
	defer srv.Close()

	info, err := manager.Create(service.CreateSessionRequest{Workload: "TS", Input: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the round trip over HTTP so the endpoint instruments fire too.
	c := client.New(srv.URL)
	if _, err := c.Suggest(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Observe(info.ID, service.ObserveRequest{ExecTime: 120}); err != nil {
		t.Fatal(err)
	}

	page := scrape(t, reg)
	for _, want := range []string{
		"deepcat_suggest_duration_seconds_count 1",
		"deepcat_observe_duration_seconds_count 1",
		"deepcat_sessions_created_total 1",
		`deepcat_http_requests_total{endpoint="suggest",code="200"} 1`,
		`deepcat_http_requests_total{endpoint="observe",code="200"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Latency histogram sums must be non-zero: a suggest runs the actor and
	// the Twin-Q search, an observe runs 24 fine-tune iterations.
	for _, family := range []string{"deepcat_suggest_duration_seconds_sum", "deepcat_observe_duration_seconds_sum"} {
		if strings.Contains(page, family+" 0\n") {
			t.Errorf("%s is zero after a round trip", family)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", page)
	}
}

// TestMetricsEndpointCodes asserts error paths land in the right status
// label, keeping the request counter usable as an error-rate source.
func TestMetricsEndpointCodes(t *testing.T) {
	store, err := service.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	manager := service.NewManager(store, 4)
	reg := obs.NewRegistry()
	manager.AttachObs(reg, nil)
	srv := httptest.NewServer(service.NewServer(manager))
	defer srv.Close()

	c := client.New(srv.URL)
	if _, err := c.Suggest("s-missing"); err == nil {
		t.Fatal("suggest on a missing session succeeded")
	}
	if !strings.Contains(scrape(t, reg), `deepcat_http_requests_total{endpoint="suggest",code="404"} 1`) {
		t.Fatal("404 not counted under the suggest endpoint")
	}
}

// scrape renders the registry the way the /metrics handler would.
func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec.Body.String()
}
