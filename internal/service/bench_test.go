package service_test

import (
	"testing"

	"deepcat/internal/service"
	"deepcat/internal/spine"
)

// BenchmarkSessionSuggestObserve measures the daemon's tuning hot path at
// the manager level: one suggest (actor forward pass + Twin-Q search) and
// one observe (reward, replay insert, 24 fine-tune gradient updates,
// write-through checkpoint) per iteration — exactly the work one
// scheduler round-trip costs the daemon, minus HTTP.
func BenchmarkSessionSuggestObserve(b *testing.B) {
	store, err := service.NewFSStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	manager := service.NewManager(store, 1)
	info, err := manager.Create(service.CreateSessionRequest{Workload: "TS", Input: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := manager.Suggest(info.ID, ""); err != nil {
			b.Fatal(err)
		}
		if _, err := manager.Observe(info.ID, service.ObserveRequest{ExecTime: 100}, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionSuggestObserveSpine is the same round-trip in actor/learner
// mode: the 24 inline fine-tune updates are replaced by an enqueue into the
// shared replay spine (gradient work moves to the learner pool, disabled here
// to isolate the session-side cost). Compare against
// BenchmarkSessionSuggestObserve for the per-observation win of the split.
func BenchmarkSessionSuggestObserveSpine(b *testing.B) {
	store, err := service.NewFSStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	sp := spine.New(spine.Options{})
	defer sp.Close()
	manager := service.NewManager(store, 1)
	manager.AttachSpine(service.SpineConfig{Spine: sp})
	info, err := manager.Create(service.CreateSessionRequest{Workload: "TS", Input: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := manager.Suggest(info.ID, ""); err != nil {
			b.Fatal(err)
		}
		if _, err := manager.Observe(info.ID, service.ObserveRequest{ExecTime: 100}, ""); err != nil {
			b.Fatal(err)
		}
	}
}
