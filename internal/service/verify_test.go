package service

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"testing"
)

// TestVerifyCheckpoint proves the verifier both accepts a real checkpoint
// and catches poison hidden in each layer: session metadata, a replay
// transition, and a network weight.
func TestVerifyCheckpoint(t *testing.T) {
	m := testManager(t, 0)
	createTestSession(t, m, "v")
	observeOnce(t, m, "v", ObserveRequest{ExecTime: 100})
	s, err := m.Get("v")
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCheckpoint(data); err != nil {
		t.Fatalf("clean checkpoint rejected: %v", err)
	}
	if err := VerifyCheckpoint([]byte("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}

	poison := func(name string, mutate func(ck *sessionCheckpoint), want string) {
		var ck sessionCheckpoint
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ck); err != nil {
			t.Fatal(err)
		}
		mutate(&ck)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
			t.Fatal(err)
		}
		err := VerifyCheckpoint(buf.Bytes())
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: err = %v, want mention of %q", name, err, want)
		}
	}
	poison("meta", func(ck *sessionCheckpoint) { ck.Meta.BestTime = math.NaN() }, "meta")
	poison("replay", func(ck *sessionCheckpoint) {
		ps := ck.Snap.Replay.Uniform
		if ps == nil {
			ps = ck.Snap.Replay.Low
		}
		if ps == nil || len(ps.Transitions) == 0 {
			t.Fatal("checkpoint has no replay transitions to poison")
		}
		ps.Transitions[0].Reward = math.Inf(1)
	}, "replay")
	poison("weights", func(ck *sessionCheckpoint) {
		ck.Snap.Agent.Actor.Layers[0].W.Data[0] = math.NaN()
	}, "actor")
}
