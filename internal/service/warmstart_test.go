package service_test

import (
	"math"
	"net"
	"net/http"
	"testing"

	"deepcat/internal/cli"
	"deepcat/internal/service"
	"deepcat/internal/service/client"
	"deepcat/internal/warehouse"
)

// startWarehouseDaemon is startDaemon with a fleet experience warehouse
// attached before resume, mirroring deepcat-serve's -warehouse startup order.
func startWarehouseDaemon(t *testing.T, dir string, wh *warehouse.Warehouse) (*service.Manager, *client.Client, func()) {
	t.Helper()
	store, err := service.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	manager := service.NewManager(store, 0)
	manager.AttachWarehouse(wh)
	if _, err := manager.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewServer(manager)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	stop := func() {
		srv.Close()
		<-done
	}
	return manager, client.New("http://" + ln.Addr().String()), stop
}

// TestEndToEndWarmStart is the acceptance test for cross-session
// warm-starting: session A tunes a workload and feeds the warehouse, a donor
// is distilled from the family, and session B on the same workload signature
// starts from that donor with a pre-filled high-reward pool and out-performs
// a cold-started control with the same seed over its first rounds.
func TestEndToEndWarmStart(t *testing.T) {
	whDir := t.TempDir()
	wh, err := warehouse.Open(warehouse.Options{
		Dir:              whDir,
		TrainInterval:    0, // background trainer off: the test trains synchronously
		TrainIters:       600,
		MinFamilyRecords: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()

	_, c, stop := startWarehouseDaemon(t, t.TempDir(), wh)
	defer stop()

	// Before any session exists the endpoints answer but are empty.
	stats, err := c.WarehouseStats()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Enabled || stats.Stats == nil || stats.Stats.Records != 0 {
		t.Fatalf("pristine warehouse stats = %+v", stats)
	}
	if _, err := c.Donors("a.TS.1"); err == nil {
		t.Fatal("donor listing for an unknown family should 404")
	}

	// Session A: offline-train against the simulator and stream the
	// experience into the warehouse, then run a few live rounds.
	const sig = "a.TS.1"
	infoA, err := c.CreateSession(service.CreateSessionRequest{
		ID: "donor-feeder", Workload: "TS", Input: 1, Seed: 7, OfflineIters: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if infoA.WarmStarted {
		t.Fatalf("first session on an empty warehouse warm-started: %+v", infoA)
	}
	driveSession(t, c, infoA.ID, 5, 4242)

	stats, err = c.WarehouseStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stats.Records < 400+5 {
		t.Fatalf("warehouse holds %d records, want >= 405", stats.Stats.Records)
	}
	var fam *warehouse.FamilyStats
	for i := range stats.Stats.Families {
		if stats.Stats.Families[i].Signature == sig {
			fam = &stats.Stats.Families[i]
		}
	}
	if fam == nil || fam.Donors != 0 {
		t.Fatalf("family %s pre-training = %+v", sig, fam)
	}

	// Distill the family into a donor (in production the background pool
	// does this on its own schedule).
	meta, err := wh.TrainFamily(sig)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 1 || meta.Records < 400 {
		t.Fatalf("donor meta = %+v", meta)
	}
	donors, err := c.Donors(sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(donors.Donors) != 1 || donors.Donors[0].Generation != 1 {
		t.Fatalf("donor listing = %+v", donors)
	}

	// Session B inherits: donor networks adopted, high-reward pool
	// pre-filled, no offline training of its own.
	infoB, err := c.CreateSession(service.CreateSessionRequest{
		ID: "warm", Workload: "TS", Input: 1, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !infoB.WarmStarted || infoB.Donor != sig+"-g1" {
		t.Fatalf("session B did not warm-start: %+v", infoB)
	}
	if infoB.HighReplayLen == 0 || infoB.ReplayLen == 0 {
		t.Fatalf("warm-started session has empty pools: %+v", infoB)
	}

	// The control: identical request except it opts out of warm-starting.
	infoC, err := c.CreateSession(service.CreateSessionRequest{
		ID: "cold-control", Workload: "TS", Input: 1, Seed: 99, NoWarmStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if infoC.WarmStarted || infoC.ReplayLen != 0 {
		t.Fatalf("control session was not cold: %+v", infoC)
	}

	// Early rounds: the warm session must beat the cold control on the same
	// (separately instantiated, identically seeded) target system.
	const earlyRounds = 3
	bestWarm := driveSession(t, c, infoB.ID, earlyRounds, 555)
	bestCold := driveSession(t, c, infoC.ID, earlyRounds, 555)
	if !(bestWarm < bestCold) {
		t.Fatalf("warm-started best %.3fs did not beat cold control best %.3fs in %d rounds",
			bestWarm, bestCold, earlyRounds)
	}
}

// driveSession plays n suggest/observe rounds for one session against a
// fresh simulator built with targetSeed and returns the best execution time.
func driveSession(t *testing.T, c *client.Client, id string, n int, targetSeed int64) float64 {
	t.Helper()
	info, err := c.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	target, err := cli.BuildEnv(info.Cluster, info.Workload, info.Input, targetSeed)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		sug, err := c.Suggest(id)
		if err != nil {
			t.Fatalf("suggest %s round %d: %v", id, i, err)
		}
		outcome := target.Evaluate(sug.Action)
		obs, err := c.Observe(id, service.ObserveRequest{
			Step:     sug.Step,
			ExecTime: outcome.ExecTime,
			Failed:   outcome.Failed,
			State:    outcome.State,
		})
		if err != nil {
			t.Fatalf("observe %s round %d: %v", id, i, err)
		}
		if !outcome.Failed && outcome.ExecTime < best {
			best = outcome.ExecTime
		}
		_ = obs
	}
	return best
}
