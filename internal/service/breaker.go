package service

import (
	"time"

	"deepcat/internal/env"
	"deepcat/internal/trace"
)

// Session health states, reported in SessionInfo.Health and
// ObserveResponse.Health.
const (
	// HealthHealthy is the normal state: suggestions come from the model
	// and observations are learned from.
	HealthHealthy = "healthy"
	// HealthDegraded means the session's circuit breaker tripped after a
	// run of consecutive failures: suggestions fall back to the last known
	// good configuration and observations are recorded but not learned
	// from, protecting the agent and the warehouse from a failing or
	// corrupted environment.
	HealthDegraded = "degraded"
	// HealthHalfOpen means the breaker's cooldown elapsed: the next
	// suggestion is a fresh model probe, and its observation decides
	// between recovery and another degraded period.
	HealthHalfOpen = "half_open"
)

// Resilience configures per-session fault handling: the circuit breaker
// and the observation sanitizer. The zero value selects the defaults via
// normalize; use a negative SanitizeWindow to disable sanitizing.
type Resilience struct {
	// BreakerThreshold is the number of consecutive failed (or
	// quarantined) observations that trips the session into the degraded
	// state (default 5; < 0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is the number of observations the session sits out
	// while degraded before probing half-open (default 2).
	BreakerCooldown int
	// SanitizeWindow is the sanitizer's accepted-history window
	// (default 20; < 0 disables the outlier test — non-finite values are
	// always rejected).
	SanitizeWindow int
	// SanitizeMADK is the MAD-multiple rejection threshold (default
	// env.DefaultMADK).
	SanitizeMADK float64
}

// DefaultResilience returns the daemon's default fault-handling profile.
func DefaultResilience() Resilience {
	return Resilience{
		BreakerThreshold: 5,
		BreakerCooldown:  2,
		SanitizeWindow:   20,
		SanitizeMADK:     env.DefaultMADK,
	}
}

// normalize fills zero fields with defaults, preserving explicit negative
// (disabled) settings.
func (r Resilience) normalize() Resilience {
	d := DefaultResilience()
	if r.BreakerThreshold == 0 {
		r.BreakerThreshold = d.BreakerThreshold
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = d.BreakerCooldown
	}
	if r.SanitizeWindow == 0 {
		r.SanitizeWindow = d.SanitizeWindow
	}
	if r.SanitizeMADK <= 0 {
		r.SanitizeMADK = d.SanitizeMADK
	}
	return r
}

// healthLocked returns the session's health, normalizing the empty string
// (checkpoints from before the breaker existed) to healthy. Callers hold
// s.mu.
func (s *Session) healthLocked() string {
	if s.meta.Health == "" {
		return HealthHealthy
	}
	return s.meta.Health
}

// breakerObserve advances the circuit breaker on one observation outcome
// and returns the (previous, new) health pair. Transitions are traced,
// counted and logged here so every caller reports them uniformly. Callers
// hold s.mu.
func (s *Session) breakerObserve(failed bool, now time.Time) (prev, cur string) {
	prev = s.healthLocked()
	if s.res.BreakerThreshold < 0 {
		return prev, prev
	}
	cur = prev
	switch prev {
	case HealthDegraded:
		s.meta.DegradedObs++
		if s.meta.DegradedObs >= s.res.BreakerCooldown {
			cur = HealthHalfOpen
		}
	case HealthHalfOpen:
		if failed {
			cur = HealthDegraded
			s.meta.DegradedObs = 0
			s.meta.BreakerTrips++
		} else {
			cur = HealthHealthy
			s.meta.ConsecFails = 0
		}
	default:
		if failed {
			s.meta.ConsecFails++
			if s.meta.ConsecFails >= s.res.BreakerThreshold {
				cur = HealthDegraded
				s.meta.DegradedObs = 0
				s.meta.BreakerTrips++
			}
		} else {
			s.meta.ConsecFails = 0
		}
	}
	s.meta.Health = cur
	if cur == prev {
		return prev, cur
	}
	sp := trace.Begin(s.rec, "breaker_"+transitionName(prev, cur)).
		Attr("from", prev).Attr("to", cur).
		AttrInt("consecutive_failures", s.meta.ConsecFails)
	sp.End()
	switch {
	case cur == HealthDegraded && prev == HealthHealthy:
		s.met.breakerTrips.Inc()
		s.met.degradedSessions.Inc()
	case cur == HealthDegraded && prev == HealthHalfOpen:
		s.met.breakerTrips.Inc()
	case cur == HealthHealthy:
		s.met.breakerRecoveries.Inc()
		s.met.degradedSessions.Dec()
	}
	return prev, cur
}

// transitionName labels a breaker transition for the trace stream.
func transitionName(prev, cur string) string {
	switch {
	case cur == HealthDegraded:
		return "trip"
	case cur == HealthHalfOpen:
		return "half_open"
	default:
		return "close"
	}
}
