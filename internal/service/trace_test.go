package service_test

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"deepcat/internal/service"
	"deepcat/internal/service/client"
	"deepcat/internal/trace"
)

// startTracedDaemon is startDaemon with flight recording enabled.
func startTracedDaemon(t *testing.T, dir string, tc service.TraceConfig) (*service.Manager, *client.Client, func()) {
	t.Helper()
	store, err := service.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	manager := service.NewManager(store, 8)
	manager.AttachTrace(tc)
	if _, err := manager.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewServer(manager)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	stop := func() {
		srv.Close()
		<-done
	}
	return manager, client.New("http://" + ln.Addr().String()), stop
}

func TestTraceEndpoints(t *testing.T) {
	spoolDir := t.TempDir()
	_, c, stop := startTracedDaemon(t, t.TempDir(), service.TraceConfig{RingSize: 1024, Dir: spoolDir})
	defer stop()

	info, err := c.CreateSession(service.CreateSessionRequest{ID: "s-traced", Workload: "TS", Input: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	for i := 0; i < rounds; i++ {
		sug, err := c.Suggest(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Observe(info.ID, service.ObserveRequest{Step: sug.Step, ExecTime: 100 - float64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := c.Trace(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Session != info.ID || len(resp.Events) == 0 {
		t.Fatalf("trace response = session %q, %d events", resp.Session, len(resp.Events))
	}
	var candidates, rewards int
	spans := map[string]bool{}
	reqIDs := map[string]bool{}
	lastStep := 0
	for _, ev := range resp.Events {
		switch ev.Kind {
		case trace.KindCandidate:
			candidates++
		case trace.KindReward:
			rewards++
		case trace.KindSpan:
			spans[ev.Span] = true
			if id := ev.Attrs["request_id"]; id != "" {
				reqIDs[id] = true
			}
		}
		if ev.Step > lastStep {
			lastStep = ev.Step
		}
	}
	if candidates == 0 || rewards != rounds {
		t.Fatalf("trace stream: %d candidates, %d rewards (want >0, %d)", candidates, rewards, rounds)
	}
	for _, want := range []string{"session.suggest", "suggest", "session.observe", "observe", "train_once", "checkpoint"} {
		if !spans[want] {
			t.Fatalf("span %q missing from trace; have %v", want, spans)
		}
	}
	// Each HTTP suggest/observe gets its own X-Request-Id, and the spans
	// must carry them for log correlation.
	if len(reqIDs) < 2*rounds {
		t.Fatalf("only %d distinct request ids on spans, want %d", len(reqIDs), 2*rounds)
	}
	if lastStep != rounds {
		t.Fatalf("trace events reach step %d, want %d", lastStep, rounds)
	}

	// The ?n= limit returns the newest events only.
	limited, err := c.Trace(info.ID, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Events) != 5 {
		t.Fatalf("Trace(n=5) returned %d events", len(limited.Events))
	}
	all := resp.Events
	if limited.Events[4].Seq != all[len(all)-1].Seq {
		t.Fatalf("limited fetch not anchored at the newest event: %d vs %d",
			limited.Events[4].Seq, all[len(all)-1].Seq)
	}

	// Chrome export parses as a trace-event file.
	raw, err := c.TraceExport(info.ID, "chrome")
	if err != nil {
		t.Fatal(err)
	}
	var chromeFile struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chromeFile); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(chromeFile.TraceEvents) != len(all)+1 { // +1 process_name metadata
		t.Fatalf("chrome export has %d events, want %d", len(chromeFile.TraceEvents), len(all)+1)
	}

	// Unknown formats and sessions are client errors.
	if _, err := c.TraceExport(info.ID, "svg"); err == nil {
		t.Fatal("unknown export format accepted")
	}
	if _, err := c.Trace("s-missing", 0); err == nil {
		t.Fatal("trace of unknown session succeeded")
	}

	// The spool mirrors the stream on disk, readable by deepcat-trace.
	spooled, err := trace.ReadSpool(filepath.Join(spoolDir, info.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spooled) != len(all) {
		t.Fatalf("spool holds %d events, ring served %d", len(spooled), len(all))
	}
}

func TestTraceDisabled(t *testing.T) {
	_, c, stop := startDaemon(t, t.TempDir(), 4)
	defer stop()
	info, err := c.CreateSession(service.CreateSessionRequest{Workload: "TS", Input: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Trace(info.ID, 0)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("trace on untraced daemon = %v, want 404", err)
	}
}

func TestTraceSpoolSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spoolDir := t.TempDir()
	tc := service.TraceConfig{RingSize: 256, Dir: spoolDir}

	_, c, stop := startTracedDaemon(t, dir, tc)
	info, err := c.CreateSession(service.CreateSessionRequest{ID: "s-restart", Workload: "TS", Input: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sug, err := c.Suggest(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Observe(info.ID, service.ObserveRequest{Step: sug.Step, ExecTime: 90}); err != nil {
		t.Fatal(err)
	}
	stop()

	spool := filepath.Join(spoolDir, "s-restart.jsonl")
	firstGen, err := trace.ReadSpool(spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(firstGen) == 0 {
		t.Fatal("no events spooled before restart")
	}
	// Simulate a crash mid-write: append a torn line the reopen must heal.
	f, err := os.OpenFile(spool, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":99999,"kind":"spa`)
	f.Close()

	_, c2, stop2 := startTracedDaemon(t, dir, tc)
	defer stop2()
	sug2, err := c2.Suggest("s-restart")
	if err != nil {
		t.Fatal(err)
	}
	if sug2.Step != 2 {
		t.Fatalf("resumed session pending step = %d, want 2", sug2.Step)
	}
	if _, err := c2.Observe("s-restart", service.ObserveRequest{Step: sug2.Step, ExecTime: 80}); err != nil {
		t.Fatal(err)
	}

	events, err := trace.ReadSpool(spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) <= len(firstGen) {
		t.Fatalf("spool did not grow across restart: %d -> %d", len(firstGen), len(events))
	}
	// The torn fragment is gone and post-restart events decode cleanly
	// after it.
	for _, ev := range events {
		if ev.Seq == 99999 {
			t.Fatal("torn line survived recovery")
		}
	}
	var step2 bool
	for _, ev := range events[len(firstGen):] {
		if ev.Step == 2 {
			step2 = true
		}
	}
	if !step2 {
		t.Fatal("no step-2 events spooled after restart")
	}
}
