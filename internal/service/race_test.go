package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestDeleteRacesObserve drives a session delete concurrently with an
// in-flight observe, repeatedly, and asserts the invariant the checkpoint
// lock exists to protect: whatever the interleaving, once both calls return
// the session's checkpoint is gone from the store — an observe must never
// resurrect a deleted session's checkpoint — and neither call deadlocks.
// Run with -race.
func TestDeleteRacesObserve(t *testing.T) {
	store := NewMemStore()
	m := NewManager(store, 0)
	for i := 0; i < 25; i++ {
		id := fmt.Sprintf("race-%d", i)
		if _, err := m.Create(CreateSessionRequest{ID: id, Workload: "WC", Input: 1, Cluster: "a", Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		sug, err := m.Suggest(id, "")
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Either outcome is legal: the observation lands (and its
			// checkpoint is subsequently deleted) or the session is already
			// gone/closed. What matters is the postcondition below.
			_, _ = m.Observe(id, ObserveRequest{Step: sug.Step, ExecTime: 100}, "")
		}()
		go func() {
			defer wg.Done()
			if err := m.Delete(id); err != nil {
				t.Errorf("delete %s: %v", id, err)
			}
		}()
		wg.Wait()

		if _, err := store.Load(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("iteration %d: checkpoint for deleted session %s still in store (err=%v)", i, id, err)
		}
		if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("iteration %d: deleted session %s still live (err=%v)", i, id, err)
		}
	}
}
