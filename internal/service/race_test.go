package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSuggestSharedArena hammers Suggest from many goroutines —
// several against the same session, across several sessions at once — with
// interleaved Observes advancing the steps. Every Suggest on a session runs
// the batched Twin-Q search over that session's one reused scratch arena;
// the per-session mutex is the only thing making that safe, and this test
// under -race is the proof. It also pins the idempotency contract: racing
// Suggests with no intervening Observe must all see the same step and the
// same configuration.
func TestConcurrentSuggestSharedArena(t *testing.T) {
	const (
		sessions = 3
		workers  = 4 // goroutines per session, all sharing its arena
		rounds   = 8
	)
	m := NewManager(NewMemStore(), 0)
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("arena-%d", i)
		if _, err := m.Create(CreateSessionRequest{ID: id, Workload: "WC", Input: 1, Cluster: "a", Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("arena-%d", i)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id string, w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					sug, err := m.Suggest(id, "")
					if err != nil {
						t.Errorf("%s worker %d round %d: suggest: %v", id, w, r, err)
						return
					}
					// Racing re-suggests must idempotently re-serve the
					// pending suggestion, not re-run the search.
					again, err := m.Suggest(id, "")
					if err != nil {
						t.Errorf("%s worker %d round %d: re-suggest: %v", id, w, r, err)
						return
					}
					if again.Step == sug.Step {
						for j := range sug.Action {
							if again.Action[j] != sug.Action[j] {
								t.Errorf("%s worker %d round %d: same step %d, different action", id, w, r, sug.Step)
								return
							}
						}
					}
					// Advance the session; concurrent observes for the same
					// step race, and all but one are rejected — both
					// outcomes are fine.
					_, _ = m.Observe(id, ObserveRequest{Step: sug.Step, ExecTime: 50 + float64(r)}, "")
				}
			}(id, w)
		}
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("arena-%d", i)
		sess, err := m.Get(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if sess.Info().Step == 0 {
			t.Errorf("%s: no step advanced under concurrent load", id)
		}
	}
}

// TestDeleteRacesObserve drives a session delete concurrently with an
// in-flight observe, repeatedly, and asserts the invariant the checkpoint
// lock exists to protect: whatever the interleaving, once both calls return
// the session's checkpoint is gone from the store — an observe must never
// resurrect a deleted session's checkpoint — and neither call deadlocks.
// Run with -race.
func TestDeleteRacesObserve(t *testing.T) {
	store := NewMemStore()
	m := NewManager(store, 0)
	for i := 0; i < 25; i++ {
		id := fmt.Sprintf("race-%d", i)
		if _, err := m.Create(CreateSessionRequest{ID: id, Workload: "WC", Input: 1, Cluster: "a", Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		sug, err := m.Suggest(id, "")
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Either outcome is legal: the observation lands (and its
			// checkpoint is subsequently deleted) or the session is already
			// gone/closed. What matters is the postcondition below.
			_, _ = m.Observe(id, ObserveRequest{Step: sug.Step, ExecTime: 100}, "")
		}()
		go func() {
			defer wg.Done()
			if err := m.Delete(id); err != nil {
				t.Errorf("delete %s: %v", id, err)
			}
		}()
		wg.Wait()

		if _, err := store.Load(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("iteration %d: checkpoint for deleted session %s still in store (err=%v)", i, id, err)
		}
		if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("iteration %d: deleted session %s still live (err=%v)", i, id, err)
		}
	}
}
