package service

import (
	"bytes"
	"context"
	"testing"
	"time"

	"deepcat/internal/rl"
	"deepcat/internal/spine"
	"deepcat/internal/warehouse"
)

// toyExec is the deterministic toy objective both tuning modes chase: the
// closer the suggested action is to 0.5 in every dimension, the faster the
// "run". Exec times span [60, 110]; the sessions' default time is far above,
// so every measurement is a speedup and the reward gradient points at the
// center of the space.
func toyExec(action []float64) float64 {
	d := 0.0
	for _, v := range action {
		d += (v - 0.5) * (v - 0.5)
	}
	return 60 + 200*d/float64(len(action))
}

// driveSteps runs n suggest/observe round-trips against the manager's
// session, returning the exec time of every step.
func driveSteps(t *testing.T, m *Manager, id string, n int) []float64 {
	t.Helper()
	execs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		sug, err := m.Suggest(id, "")
		if err != nil {
			t.Fatal(err)
		}
		exec := toyExec(sug.Action)
		if _, err := m.Observe(id, ObserveRequest{Step: sug.Step, ExecTime: exec}, ""); err != nil {
			t.Fatal(err)
		}
		execs = append(execs, exec)
	}
	return execs
}

func tailMean(xs []float64, n int) float64 {
	tail := xs[len(xs)-n:]
	sum := 0.0
	for _, x := range tail {
		sum += x
	}
	return sum / float64(len(tail))
}

// TestSpineE2E is the acceptance gate for the actor/learner split. Phase 1
// runs the same toy workload through an inline-training session and a
// spine-mode session (learner passes driven explicitly so the test is
// deterministic) and asserts the spine session converges no worse. Phase 2
// restores the spine session from its write-through checkpoint and proves
// the resume is bit-identical: the restored session carries the same adopted
// policy version, emits the same suggestions and rewards in lockstep with
// the original, and re-checkpoints to identical bytes.
func TestSpineE2E(t *testing.T) {
	const steps = 56
	ctx := context.Background()

	// Inline baseline: today's per-session fine-tuning.
	mInline := NewManager(NewMemStore(), 0)
	createTestSession(t, mInline, "inline")
	inlineExecs := driveSteps(t, mInline, "inline", steps)

	// Spine mode: observations stream into the shared replay, a family
	// learner does the gradient work, the session adopts published weights
	// every 2 observations. LearnInterval stays zero — the test drives
	// learner passes itself so every run is deterministic.
	sp := spine.New(spine.Options{Seed: 42, LearnBatch: 32})
	defer sp.Close()
	storeSpine := NewMemStore()
	mSpine := NewManager(storeSpine, 0)
	mSpine.AttachSpine(SpineConfig{Spine: sp, AdoptEvery: 1})
	createTestSession(t, mSpine, "spined")
	sA, err := mSpine.Get("spined")
	if err != nil {
		t.Fatal(err)
	}
	var spineExecs []float64
	for i := 0; i < steps/2; i++ {
		spineExecs = append(spineExecs, driveSteps(t, mSpine, "spined", 2)...)
		// One learner pass per 2 observations, matching the inline mode's
		// cumulative gradient budget (24 updates/observation); the learner
		// trains off the spine's shared experience, not the session's
		// private buffer. Passes wait for a minimally filled lane so the
		// first bursts don't overfit two transitions.
		if sp.Len(sA.sig) < 8 {
			continue
		}
		if _, err := sp.TrainFamily(sA.sig, 48); err != nil {
			t.Fatalf("learner pass %d: %v", i, err)
		}
	}

	info := sA.Info()
	if !info.SpineMode || info.SpineVersion == 0 || info.SpineAdoptions == 0 {
		t.Fatalf("spine session never adopted: %+v", info)
	}
	if got := sp.Len(sA.sig); got != steps {
		t.Fatalf("spine lane holds %d transitions, want %d", got, steps)
	}

	// Convergence gate: the spine session's settled performance (mean exec
	// time of the final third) must be no worse than inline's, with a small
	// tolerance for the different gradient schedules. Both runs are fully
	// deterministic, so this does not flake.
	inlineTail, spineTail := tailMean(inlineExecs, steps/3), tailMean(spineExecs, steps/3)
	if spineTail > inlineTail*1.10 {
		t.Fatalf("spine mode converged worse: tail mean %.2f vs inline %.2f", spineTail, inlineTail)
	}
	t.Logf("tail-mean exec: inline %.2f, spine %.2f (default %.0f)", inlineTail, spineTail, sA.env.DefaultTime())

	// Phase 2: bit-identical resume. The write-through checkpoint after the
	// last observation is the restore point; the spine stays frozen (no
	// further learner passes), matching a restart window.
	data, err := storeSpine.Load("spined")
	if err != nil {
		t.Fatal(err)
	}
	sB, err := resumeSession(data, nil, mSpine.met, nil, DefaultResilience(), mSpine.spn)
	if err != nil {
		t.Fatal(err)
	}
	if sB.meta.SpineVersion != sA.meta.SpineVersion {
		t.Fatalf("resumed session adopted version %d, original had %d",
			sB.meta.SpineVersion, sA.meta.SpineVersion)
	}
	if sB.meta.SpineAdoptions != sA.meta.SpineAdoptions {
		t.Fatalf("resumed adoptions %d != original %d", sB.meta.SpineAdoptions, sA.meta.SpineAdoptions)
	}

	// Lockstep: identical suggestions, rewards and adoption decisions at a
	// pinned clock prove the restored tuner is bit-for-bit the original.
	now := time.Unix(1700000000, 0)
	for i := 0; i < 6; i++ {
		ra, err := sA.Suggest(ctx, now, "")
		if err != nil {
			t.Fatal(err)
		}
		rb, err := sB.Suggest(ctx, now, "")
		if err != nil {
			t.Fatal(err)
		}
		if ra.Step != rb.Step {
			t.Fatalf("lockstep %d: steps %d vs %d", i, ra.Step, rb.Step)
		}
		for d := range ra.Action {
			if ra.Action[d] != rb.Action[d] {
				t.Fatalf("lockstep %d: actions diverge at dim %d: %v vs %v",
					i, d, ra.Action[d], rb.Action[d])
			}
		}
		exec := toyExec(ra.Action)
		oa, err := sA.Observe(ctx, ObserveRequest{Step: ra.Step, ExecTime: exec}, now, "")
		if err != nil {
			t.Fatal(err)
		}
		ob, err := sB.Observe(ctx, ObserveRequest{Step: rb.Step, ExecTime: exec}, now, "")
		if err != nil {
			t.Fatal(err)
		}
		if oa.Reward != ob.Reward {
			t.Fatalf("lockstep %d: rewards diverge: %v vs %v", i, oa.Reward, ob.Reward)
		}
	}
	ckA, err := sA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	ckB, err := sB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckA, ckB) {
		t.Fatalf("post-lockstep checkpoints differ (%d vs %d bytes): resume is not bit-identical",
			len(ckA), len(ckB))
	}
}

// TestWarmSpineFromWarehouse proves the boot-time WAL replay: experience
// persisted by the warehouse lands in the spine's per-family lanes, so the
// learner pool resumes from history instead of an empty ring.
func TestWarmSpineFromWarehouse(t *testing.T) {
	wh, err := warehouse.Open(warehouse.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	for fam, n := range map[string]int{"a.TS.1": 5, "a.WC.2": 3} {
		for i := 0; i < n; i++ {
			err := wh.Append(warehouse.Record{
				Signature: fam,
				Session:   "s-x",
				Transition: rl.Transition{
					State:     []float64{float64(i), 1},
					Action:    []float64{0.5},
					Reward:    1,
					NextState: []float64{float64(i) + 1, 1},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	sp := spine.New(spine.Options{Shards: 2, ShardCapacity: 16})
	defer sp.Close()
	if got := WarmSpineFromWarehouse(sp, wh); got != 8 {
		t.Fatalf("warmed %d transitions, want 8", got)
	}
	if sp.Len("a.TS.1") != 5 || sp.Len("a.WC.2") != 3 {
		t.Fatalf("lanes = %d/%d, want 5/3", sp.Len("a.TS.1"), sp.Len("a.WC.2"))
	}
	if got := WarmSpineFromWarehouse(nil, nil); got != 0 {
		t.Fatalf("nil warm start = %d, want 0", got)
	}
}

// TestSpineSessionFallsBackInline confirms a manager without an attached
// spine keeps today's inline-training behavior untouched, and that spine
// metadata stays zero.
func TestSpineSessionFallsBackInline(t *testing.T) {
	m := testManager(t, 0)
	createTestSession(t, m, "plain")
	driveSteps(t, m, "plain", 2)
	s, err := m.Get("plain")
	if err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.SpineMode || info.SpineVersion != 0 || info.SpineAdoptions != 0 {
		t.Fatalf("inline session carries spine state: %+v", info)
	}
	if s.tuner.Buffer.Len() != 2 {
		t.Fatalf("replay len %d, want 2", s.tuner.Buffer.Len())
	}
}
