package service

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"deepcat/internal/cli"
	"deepcat/internal/core"
	"deepcat/internal/env"
	"deepcat/internal/mat"
	"deepcat/internal/rl"
	"deepcat/internal/spine"
	"deepcat/internal/trace"
	"deepcat/internal/warehouse"
)

// warmSeedMax caps how many high-reward transitions a warm-started session
// pre-fills its replay pools with; enough to dominate early mini-batches
// without letting a huge family swamp session creation.
const warmSeedMax = 256

// Sentinel errors; the HTTP layer maps them to status codes.
var (
	// ErrNotFound marks a missing session or checkpoint (404).
	ErrNotFound = errors.New("not found")
	// ErrInvalid marks a malformed request (400).
	ErrInvalid = errors.New("invalid request")
	// ErrConflict marks a request that contradicts session state, e.g. an
	// observation with no pending suggestion (409).
	ErrConflict = errors.New("conflict")
	// ErrClosed marks calls against a deleted session (410).
	ErrClosed = errors.New("session closed")
	// ErrFull marks session creation beyond the daemon's capacity (503).
	ErrFull = errors.New("session limit reached")
	// ErrDraining marks calls against a session frozen for checkpoint
	// handoff to another fleet shard (503; retry after the migration
	// lands and the router points at the new owner).
	ErrDraining = errors.New("session draining for migration")
)

// sessionMeta is the persisted bookkeeping of one session; everything the
// agent itself does not carry.
type sessionMeta struct {
	ID       string
	Workload string
	Input    int
	Cluster  string
	Seed     int64

	Step       int
	PrevTime   float64
	LastFailed bool
	BestTime   float64
	BestAction []float64
	State      []float64

	// Circuit-breaker state ("" in pre-breaker checkpoints normalizes to
	// healthy) and accounting; see breaker.go for the state machine.
	Health       string
	ConsecFails  int
	DegradedObs  int
	BreakerTrips int
	// Quarantined counts observations the sanitizer refused (non-finite
	// or outlier); SanRecent is the sanitizer's accepted history so a
	// resumed session keeps its outlier baseline.
	Quarantined int
	SanRecent   []float64

	// WarmStarted records that the session was seeded from the named
	// warehouse donor (e.g. "a.TS.1-g3") instead of starting cold.
	WarmStarted bool
	Donor       string

	// SpineVersion is the version of the last spine policy this session
	// adopted (0 = never adopted); persisting it makes adoption
	// checkpoint-compatible — a resumed session knows exactly which
	// published weights it runs and never re-adopts an older version.
	// SpineAdoptions counts adoptions over the session's lifetime. Both
	// stay zero when the daemon runs without a spine (gob also leaves them
	// zero when resuming a pre-spine checkpoint).
	SpineVersion   int
	SpineAdoptions int

	CreatedAt, UpdatedAt time.Time
}

// sessionCheckpoint is the on-disk format: metadata plus the tuner's full
// snapshot. A pending (unobserved) suggestion is deliberately not
// persisted: suggestions are free to recompute, so after a restart the
// session simply suggests again.
type sessionCheckpoint struct {
	Meta sessionMeta
	Snap *core.Snapshot
}

// pendingSuggest is an outstanding suggestion awaiting its observation.
type pendingSuggest struct {
	step      int
	action    []float64
	optimized bool
	// state is the system state the action was suggested for; the
	// transition recorded at observe time starts from it.
	state []float64
	// degraded marks a last-known-good fallback served while the breaker
	// is open; the model was not consulted.
	degraded bool
}

// Session is one tuning session: a DeepCAT agent bound to a workload,
// advancing through a suggest/observe loop under a mutex. All methods are
// safe for concurrent use.
type Session struct {
	mu      sync.Mutex
	meta    sessionMeta
	tuner   *core.DeepCAT
	env     *env.SparkEnv
	pending *pendingSuggest
	closed  bool
	// draining freezes the session during checkpoint handoff: suggest and
	// observe fail with ErrDraining so the transferred snapshot cannot go
	// stale between its capture and the handover completing.
	draining bool

	// wh, when set, receives every observed transition under the session's
	// workload signature sig; nil when the daemon runs without a warehouse.
	wh  *warehouse.Warehouse
	sig string

	// met is the daemon's shared instrument bundle (never nil; no-op
	// without a registry).
	met *metrics

	// rec is the session's flight recorder; nil when the daemon runs with
	// tracing disabled. It is threaded into the tuner at construction so
	// core and rl decision events land in the same per-session stream.
	rec *trace.Session

	// res is the daemon's fault-handling policy (normalized); san is the
	// observation sanitizer, nil when res disables it. The sanitizer's
	// history round-trips through meta.SanRecent at checkpoint time.
	res Resilience
	san *env.Sanitizer

	// spn, when set, switches the session to actor/learner mode: observe
	// skips inline fine-tuning, actor enqueues the transition into the
	// shared spine, and every spn.adoptEvery observations the session
	// adopts the family learner's latest published weights. Nil keeps
	// inline training.
	spn   *spineBinding
	actor *spine.Actor

	// ckpt serializes this session's store writes against its deletion;
	// see Manager.checkpoint and Manager.Delete.
	ckpt sync.Mutex
}

// TraceConfig configures per-session flight recording; see
// Manager.AttachTrace.
type TraceConfig struct {
	// RingSize bounds each session's in-memory event ring (<= 0 selects
	// trace.DefaultRingSize).
	RingSize int
	// Dir, when non-empty, additionally spools every session's events to
	// <Dir>/<session-id>.jsonl for post-mortem inspection with
	// cmd/deepcat-trace; a resumed session reopens (and crash-recovers)
	// its existing spool.
	Dir string
	// SpoolMaxBytes is the per-spool rotation threshold (<= 0 selects
	// trace.DefaultSpoolMaxBytes).
	SpoolMaxBytes int64
}

// newRecorder builds a session's flight recorder per the daemon's trace
// configuration; nil config means tracing is off. A spool that cannot be
// opened degrades the session to ring-only tracing rather than failing
// creation — the recorder is an observer, never a gate.
func newRecorder(tc *TraceConfig, id string) *trace.Session {
	if tc == nil {
		return nil
	}
	var spool *trace.Spool
	if tc.Dir != "" {
		_ = os.MkdirAll(tc.Dir, 0o755)
		if sp, err := trace.OpenSpool(filepath.Join(tc.Dir, id+".jsonl"), tc.SpoolMaxBytes); err == nil {
			spool = sp
		}
	}
	return trace.NewSession(trace.Options{RingSize: tc.RingSize, Spool: spool})
}

// newSession builds (and optionally warm-starts) a session. The simulated
// environment provides the configuration space, state dimensionality and
// default runtime; measured outcomes come from the caller via Observe.
//
// When the daemon runs a warehouse and the workload signature has a donor,
// the session adopts the donor's networks and pre-fills its replay pools
// with the family's high-reward transitions before any optional offline
// training; a missing or mismatched donor falls back to a cold start.
func newSession(id string, req CreateSessionRequest, now time.Time, wh *warehouse.Warehouse, met *metrics, tc *TraceConfig, res Resilience, spn *spineBinding) (*Session, error) {
	e, err := cli.BuildEnv(req.Cluster, req.Workload, req.Input, req.Seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrInvalid, err)
	}
	if req.Cluster == "b" {
		e.Clamp = true
	}
	if req.OfflineIters < 0 {
		return nil, fmt.Errorf("%w: negative offline_iters %d", ErrInvalid, req.OfflineIters)
	}
	cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
	tuner, err := core.New(rand.New(rand.NewSource(req.Seed)), cfg)
	if err != nil {
		return nil, err
	}
	s := &Session{
		meta: sessionMeta{
			ID:        id,
			Workload:  req.Workload,
			Input:     req.Input,
			Cluster:   req.Cluster,
			Seed:      req.Seed,
			PrevTime:  e.DefaultTime(),
			State:     e.IdleState(),
			CreatedAt: now,
			UpdatedAt: now,
		},
		tuner: tuner,
		env:   e,
		wh:    wh,
		sig:   warehouse.Signature(req.Cluster, req.Workload, req.Input),
		met:   met,
		rec:   newRecorder(tc, id),
		res:   res.normalize(),
		spn:   spn,
	}
	if spn != nil {
		s.actor = spn.sp.Actor(s.sig)
	}
	s.meta.Health = HealthHealthy
	if s.res.SanitizeWindow > 0 {
		s.san = env.NewSanitizer(s.res.SanitizeWindow, s.res.SanitizeMADK)
	}
	tuner.SetRecorder(s.rec)
	if wh != nil && !req.NoWarmStart {
		if ws, ok := wh.WarmStart(s.sig, cfg.RewardThreshold, warmSeedMax); ok {
			sp := trace.Begin(s.rec, "donor_adopt")
			if err := tuner.AdoptAgent(ws.Snap); err == nil {
				tuner.SeedReplay(ws.Seeds)
				s.meta.WarmStarted = true
				s.meta.Donor = fmt.Sprintf("%s-g%d", ws.Donor.Signature, ws.Donor.Generation)
				sp.Attr("donor", s.meta.Donor).AttrInt("seeds", len(ws.Seeds))
			} else {
				sp.Attr("error", err.Error())
			}
			sp.End()
			// An adoption error (e.g. a donor from an incompatible build)
			// is not fatal: the session simply starts cold.
		}
	}
	if req.OfflineIters > 0 {
		sp := trace.Begin(s.rec, "offline_train").AttrInt("iters", req.OfflineIters)
		tuner.OfflineTrain(e, req.OfflineIters, nil)
		sp.End()
		if wh != nil && !s.meta.WarmStarted {
			// Contribute the offline experience to the fleet. Warm-started
			// sessions skip the bulk export: their buffer already holds
			// warehouse transitions and re-logging them would double-count.
			if trs, err := rl.ExportTransitions(tuner.Buffer); err == nil {
				recs := make([]warehouse.Record, len(trs))
				for i, tr := range trs {
					recs[i] = warehouse.Record{Signature: s.sig, Session: id, Transition: tr}
				}
				wsp := trace.Begin(s.rec, "warehouse_ingest").AttrInt("records", len(recs))
				_ = wh.AppendBatch(recs)
				wsp.End()
			}
		}
	}
	return s, nil
}

// ID returns the session id.
func (s *Session) ID() string {
	return s.meta.ID // immutable after construction
}

// Info returns a snapshot of the session's public state.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked()
}

func (s *Session) infoLocked() SessionInfo {
	state := StateReady
	switch {
	case s.closed:
		state = StateClosed
	case s.pending != nil:
		state = StateAwaitingObservation
	}
	info := SessionInfo{
		ID:             s.meta.ID,
		Workload:       s.meta.Workload,
		Input:          s.meta.Input,
		Cluster:        s.meta.Cluster,
		Seed:           s.meta.Seed,
		State:          state,
		Step:           s.meta.Step,
		DefaultTime:    s.env.DefaultTime(),
		BestTime:       s.meta.BestTime,
		BestAction:     mat.CloneSlice(s.meta.BestAction),
		ReplayLen:      s.tuner.Buffer.Len(),
		WarmStarted:    s.meta.WarmStarted,
		Donor:          s.meta.Donor,
		SpineMode:      s.spn != nil,
		SpineVersion:   s.meta.SpineVersion,
		SpineAdoptions: s.meta.SpineAdoptions,
		SpineSheds:     s.spineShedsLocked(),
		Health:         s.healthLocked(),
		Quarantined:    s.meta.Quarantined,
		Trips:          s.meta.BreakerTrips,
		CreatedAt:      s.meta.CreatedAt,
		UpdatedAt:      s.meta.UpdatedAt,
	}
	if rd, ok := s.tuner.Buffer.(*rl.RDPER); ok {
		info.HighReplayLen = rd.HighLen()
	}
	return info
}

// spineShedsLocked reports how many of this session's transitions the
// spine's ingest queue has dropped under backpressure.
func (s *Session) spineShedsLocked() uint64 {
	if s.actor == nil {
		return 0
	}
	return s.actor.Sheds()
}

// Suggest returns the next configuration to evaluate. While an observation
// is outstanding it idempotently re-returns the same suggestion, so
// schedulers can safely retry. While the session is degraded it serves the
// last known good configuration without consulting the model; a half-open
// session issues a fresh model probe. ctx ends the call early when the
// originating request is gone; reqID, when non-empty, tags the recorded
// span so a trace line can be correlated with the daemon's request log.
func (s *Session) Suggest(ctx context.Context, now time.Time, reqID string) (SuggestResponse, error) {
	if err := ctx.Err(); err != nil {
		return SuggestResponse{}, fmt.Errorf("session %s: suggest abandoned: %w", s.meta.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check after the lock: a request whose deadline budget died while
	// queued behind a slow holder must fail with its deadline error (504
	// at the HTTP layer), not burn model work producing an answer nobody
	// is waiting for.
	if err := ctx.Err(); err != nil {
		return SuggestResponse{}, fmt.Errorf("session %s: suggest abandoned: %w", s.meta.ID, err)
	}
	if s.closed {
		return SuggestResponse{}, fmt.Errorf("session %s: %w", s.meta.ID, ErrClosed)
	}
	if s.draining {
		return SuggestResponse{}, fmt.Errorf("session %s: %w", s.meta.ID, ErrDraining)
	}
	if s.pending == nil {
		step := s.meta.Step + 1
		s.rec.SetStep(step)
		sp := trace.Begin(s.rec, "session.suggest").AttrInt("step", step)
		if reqID != "" {
			sp.Attr("request_id", reqID)
		}
		if sc, ok := trace.FromContext(ctx); ok {
			sp.AttrContext(sc)
		}
		if s.healthLocked() == HealthDegraded && s.meta.BestAction != nil {
			// Open breaker: re-serve the last known good configuration.
			// The model is deliberately not consulted — a failing
			// environment must not drag the policy around.
			s.pending = &pendingSuggest{
				step:     step,
				action:   mat.CloneSlice(s.meta.BestAction),
				state:    mat.CloneSlice(s.meta.State),
				degraded: true,
			}
			s.met.degradedSuggests.Inc()
			s.meta.UpdatedAt = now
			sp.AttrBool("degraded", true).End()
			return s.suggestResponseLocked(), nil
		}
		start := time.Now()
		action, st := s.tuner.SuggestWithStats(s.meta.State, s.meta.LastFailed)
		s.met.suggestDur.ObserveSince(start)
		if st.Tries > 1 {
			s.met.twinqCandidates.Add(uint64(st.Tries - 1))
		}
		if st.Optimized {
			s.met.twinqRejections.Inc()
		}
		s.pending = &pendingSuggest{
			step:      step,
			action:    mat.CloneSlice(action),
			optimized: st.Optimized,
			state:     mat.CloneSlice(s.meta.State),
		}
		s.meta.UpdatedAt = now
		sp.AttrInt("tries", st.Tries).AttrBool("optimized", st.Optimized).
			AttrBool("probe", s.healthLocked() == HealthHalfOpen).End()
	}
	return s.suggestResponseLocked(), nil
}

func (s *Session) suggestResponseLocked() SuggestResponse {
	space := s.env.Space()
	values := space.Denormalize(s.pending.action)
	cfg := make(map[string]float64, space.Dim())
	for i, p := range space.Params() {
		cfg[p.Name] = values[i]
	}
	return SuggestResponse{
		Step:      s.pending.step,
		Action:    mat.CloneSlice(s.pending.action),
		Config:    cfg,
		Optimized: s.pending.optimized,
		Degraded:  s.pending.degraded,
	}
}

// Observe records the measured outcome of the pending suggestion and
// fine-tunes the agent on it. req.Step 0 targets the pending suggestion;
// any other value must match it. Non-finite or outlier measurements are
// quarantined: the step advances but nothing reaches the reward, the
// replay buffer, the checkpoint or the warehouse. Every outcome also
// drives the session's circuit breaker; while the breaker is open the
// session records outcomes without learning from them. ctx ends the call
// early when the originating request is gone; reqID, when non-empty, tags
// the recorded span (see Suggest).
func (s *Session) Observe(ctx context.Context, req ObserveRequest, now time.Time, reqID string) (ObserveResponse, error) {
	if err := ctx.Err(); err != nil {
		return ObserveResponse{}, fmt.Errorf("session %s: observe abandoned: %w", s.meta.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Same post-lock re-check as Suggest: an expired budget fails fast
	// rather than training and checkpointing for an absent caller.
	if err := ctx.Err(); err != nil {
		return ObserveResponse{}, fmt.Errorf("session %s: observe abandoned: %w", s.meta.ID, err)
	}
	if s.closed {
		return ObserveResponse{}, fmt.Errorf("session %s: %w", s.meta.ID, ErrClosed)
	}
	if s.draining {
		return ObserveResponse{}, fmt.Errorf("session %s: %w", s.meta.ID, ErrDraining)
	}
	if s.pending == nil {
		return ObserveResponse{}, fmt.Errorf("session %s has no pending suggestion: %w", s.meta.ID, ErrConflict)
	}
	if req.Step != 0 && req.Step != s.pending.step {
		return ObserveResponse{}, fmt.Errorf("session %s: observation for step %d, pending step is %d: %w",
			s.meta.ID, req.Step, s.pending.step, ErrConflict)
	}
	if req.ExecTime <= 0 {
		return ObserveResponse{}, fmt.Errorf("session %s: non-positive exec_time %g: %w",
			s.meta.ID, req.ExecTime, ErrInvalid)
	}
	if req.State != nil && len(req.State) != s.env.StateDim() {
		return ObserveResponse{}, fmt.Errorf("session %s: state has %d dims, want %d: %w",
			s.meta.ID, len(req.State), s.env.StateDim(), ErrInvalid)
	}

	nextState := s.meta.State
	if req.State != nil {
		nextState = mat.CloneSlice(req.State)
	}
	p := s.pending
	s.rec.SetStep(p.step)
	sc, scOK := trace.FromContext(ctx)
	sp := trace.Begin(s.rec, "session.observe").AttrInt("step", p.step).
		AttrFloat("exec_time", req.ExecTime).AttrBool("failed", req.Failed)
	if reqID != "" {
		sp.Attr("request_id", reqID)
	}
	if scOK {
		sp.AttrContext(sc)
	}

	// Sanitize before anything downstream sees the measurement. JSON
	// cannot carry NaN/Inf, but direct Go callers can; the outlier test is
	// the HTTP-reachable half.
	qerr := env.CheckFinite(env.Outcome{ExecTime: req.ExecTime, State: req.State})
	if qerr == nil && !req.Failed && s.san != nil {
		qerr = s.san.CheckTime(req.ExecTime)
	}
	failure := req.Failed || qerr != nil
	healthBefore := s.healthLocked()
	_, health := s.breakerObserve(failure, now)
	// Learn only from clean measurements taken outside a degraded period;
	// the half-open probe's outcome is learned from like any healthy one.
	learn := qerr == nil && healthBefore != HealthDegraded

	var reward float64
	if qerr != nil {
		s.meta.Quarantined++
		s.met.quarantined.Inc()
		sp.AttrBool("quarantined", true).Attr("quarantine_reason", qerr.Error())
	} else if learn {
		start := time.Now()
		if s.spn != nil {
			// Actor/learner mode: record the outcome (reward, replay append,
			// trace) without inline fine-tuning; the gradient work happens in
			// the spine's learner pool. The transition is flushed eagerly —
			// sessions are low-rate actors, so the one-transition flush costs
			// a single shard-lock acquisition and keeps the learner current.
			reward = s.tuner.ObserveNoTrain(p.state, p.action, req.ExecTime, s.meta.PrevTime,
				s.env.DefaultTime(), nextState, false)
			esp := trace.Begin(s.rec, "spine.enqueue").AttrInt("step", p.step)
			if scOK {
				esp.AttrContext(sc)
			}
			s.actor.Enqueue(rl.Transition{
				State:     p.state,
				Action:    p.action,
				Reward:    reward,
				NextState: nextState,
			})
			s.actor.Flush()
			esp.End()
		} else {
			reward = s.tuner.Observe(p.state, p.action, req.ExecTime, s.meta.PrevTime,
				s.env.DefaultTime(), nextState, false)
		}
		s.met.observeDur.ObserveSince(start)
		if s.spn != nil {
			// Adoption runs before the manager's write-through checkpoint, so
			// the persisted snapshot always carries the adopted weights
			// together with their version.
			s.maybeAdoptLocked(p.step)
		}
		if s.wh != nil {
			// Stream the observed experience into the fleet warehouse. The
			// warehouse is advisory — a full disk there must not fail the
			// observation the tuner already learned from.
			wsp := trace.Begin(s.rec, "warehouse_ingest").AttrInt("records", 1)
			_ = s.wh.Append(warehouse.Record{
				Signature: s.sig,
				Session:   s.meta.ID,
				Transition: rl.Transition{
					State:     p.state,
					Action:    p.action,
					Reward:    reward,
					NextState: nextState,
					Done:      false,
				},
			})
			wsp.End()
		}
	} else {
		sp.AttrBool("degraded_skip", true)
	}
	sp.AttrFloat("reward", reward).Attr("health", health).End()

	improved := qerr == nil && !req.Failed && (s.meta.BestTime == 0 || req.ExecTime < s.meta.BestTime)
	if improved {
		s.meta.BestTime = req.ExecTime
		s.meta.BestAction = mat.CloneSlice(p.action)
	}
	s.meta.Step = p.step
	s.meta.LastFailed = failure
	s.meta.UpdatedAt = now
	if qerr == nil {
		s.meta.PrevTime = req.ExecTime
		s.meta.State = nextState
		if !req.Failed && s.san != nil {
			s.san.Admit(req.ExecTime)
		}
	}
	s.pending = nil

	return ObserveResponse{
		Step:        s.meta.Step,
		Reward:      reward,
		BestTime:    s.meta.BestTime,
		Improved:    improved,
		Quarantined: qerr != nil,
		Health:      health,
	}, nil
}

// maybeAdoptLocked adopts the spine learner's latest published weights when
// the session step hits the adoption cadence and the published version is
// newer than the one the session runs. The cadence keys off the persisted
// step and the comparison off the persisted SpineVersion, so adoption is
// deterministic across checkpoint resume: a restored session re-checks the
// same steps and never adopts a version it already had. Callers hold s.mu.
func (s *Session) maybeAdoptLocked(step int) {
	if s.spn == nil || step%s.spn.adoptEvery != 0 {
		return
	}
	pol, ok := s.spn.sp.Policy(s.sig)
	if !ok || pol.Version <= s.meta.SpineVersion {
		return
	}
	sp := trace.Begin(s.rec, "spine_adopt").
		AttrInt("version", pol.Version).AttrInt("prev_version", s.meta.SpineVersion)
	if err := s.tuner.AdoptWeights(pol.Agent); err != nil {
		// An architecture mismatch (e.g. a lane polluted by an incompatible
		// family) must not fail the observation; the session keeps its own
		// weights and inline-accumulated replay.
		sp.Attr("error", err.Error()).End()
		return
	}
	s.meta.SpineVersion = pol.Version
	s.meta.SpineAdoptions++
	s.met.spineAdoptions.Inc()
	sp.End()
}

// Health returns the session's current breaker health.
func (s *Session) Health() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthLocked()
}

// beginDrain freezes the session for checkpoint handoff, reporting false
// when it is already draining or closed. The pending suggestion, if any,
// stays unobserved — checkpoints never carry it, and the new owner simply
// re-suggests, which is why a migration loses at most the one in-flight
// observation.
func (s *Session) beginDrain() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return false
	}
	s.draining = true
	return true
}

// endDrain unfreezes the session after a failed handoff.
func (s *Session) endDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = false
}

// Close marks the session closed; subsequent calls fail with ErrClosed.
// The flight recorder's spool, if any, is flushed and closed.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	_ = s.rec.Close()
}

// TraceRecent returns up to n of the session's most recent flight-recorder
// events, oldest first (n <= 0 means all buffered). It fails with
// ErrNotFound when the daemon runs with tracing disabled, so the HTTP
// layer can answer 404 rather than an empty trace.
func (s *Session) TraceRecent(n int) ([]trace.Event, error) {
	if s.rec == nil {
		return nil, fmt.Errorf("session %s: tracing disabled: %w", s.meta.ID, ErrNotFound)
	}
	return s.rec.Recent(n), nil
}

// TraceDropped reports how many events the ring has evicted; 0 when
// tracing is off.
func (s *Session) TraceDropped() uint64 { return s.rec.Dropped() }

// Checkpoint serializes the session (metadata plus the tuner's full
// snapshot) for the Store. The pending suggestion, if any, is dropped: it
// is recomputed for free after a restart.
func (s *Session) Checkpoint() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("session %s: %w", s.meta.ID, ErrClosed)
	}
	snap, err := s.tuner.Snapshot()
	if err != nil {
		return nil, err
	}
	if s.san != nil {
		s.meta.SanRecent = mat.CloneSlice(s.san.Recent)
	}
	ck := sessionCheckpoint{Meta: s.meta, Snap: snap}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, fmt.Errorf("service: encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// resumeSession rebuilds a session from a checkpoint written by Checkpoint.
// The environment binding is reconstructed from the persisted metadata; the
// agent, replay pool and tuning progress come from the snapshot. The
// warehouse binding, when the daemon runs one, is re-established from the
// same metadata.
func resumeSession(data []byte, wh *warehouse.Warehouse, met *metrics, tc *TraceConfig, res Resilience, spn *spineBinding) (*Session, error) {
	var ck sessionCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("service: decode checkpoint: %w", err)
	}
	if ck.Snap == nil {
		return nil, fmt.Errorf("service: checkpoint without snapshot: %w", ErrInvalid)
	}
	e, err := cli.BuildEnv(ck.Meta.Cluster, ck.Meta.Workload, ck.Meta.Input, ck.Meta.Seed)
	if err != nil {
		return nil, fmt.Errorf("service: checkpoint metadata: %w", err)
	}
	if ck.Meta.Cluster == "b" {
		e.Clamp = true
	}
	tuner, err := core.Restore(ck.Snap)
	if err != nil {
		return nil, err
	}
	s := &Session{
		meta:  ck.Meta,
		tuner: tuner,
		env:   e,
		wh:    wh,
		sig:   warehouse.Signature(ck.Meta.Cluster, ck.Meta.Workload, ck.Meta.Input),
		met:   met,
		rec:   newRecorder(tc, ck.Meta.ID),
		res:   res.normalize(),
		spn:   spn,
	}
	if spn != nil {
		s.actor = spn.sp.Actor(s.sig)
	}
	if s.meta.Health == "" {
		s.meta.Health = HealthHealthy // pre-breaker checkpoint
	}
	if s.res.SanitizeWindow > 0 {
		s.san = env.NewSanitizer(s.res.SanitizeWindow, s.res.SanitizeMADK)
		s.san.Recent = ck.Meta.SanRecent
	}
	// The recorder is deliberately not part of the checkpoint: a resumed
	// session reopens its spool (recovering any torn tail) and continues
	// the event stream with a fresh ring.
	s.rec.SetStep(ck.Meta.Step)
	tuner.SetRecorder(s.rec)
	return s, nil
}
