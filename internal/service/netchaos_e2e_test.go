package service_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deepcat/internal/netchaos"
	"deepcat/internal/service"
	"deepcat/internal/service/client"
)

// The serving stack behind a partitioned link fails fast — a deadline-
// carrying call errors within its budget instead of hanging — and
// recovers to full service once the partition heals, with no restart and
// no lingering degraded state.
func TestFleetSurvivesPartitionAndHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("real fault windows take wall-clock time")
	}
	m := service.NewManager(service.NewMemStore(), 0)
	srv := httptest.NewServer(service.NewFleetServer(m, service.FleetOptions{}))
	defer srv.Close()
	upstream := strings.TrimPrefix(srv.URL, "http://")

	// Partition from proxy start: every byte is black-holed for 400ms,
	// then the link heals for good.
	p, err := netchaos.Start("127.0.0.1:0", upstream, netchaos.Schedule{
		Seed:  1,
		Rules: []netchaos.Rule{{Kind: netchaos.KindPartition, Start: 0, Duration: 400 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := client.New("http://" + p.Addr())
	c.Retry = client.RetryPolicy{MaxAttempts: 1}

	// During the partition a budgeted call must fail within its budget,
	// not hang: the partition drops bytes rather than closing, so the only
	// way out is the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	start := time.Now()
	_, err = c.Ready(ctx)
	cancel()
	if err == nil {
		t.Fatal("Ready succeeded through an active partition")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("partitioned call took %s, want fail-fast within the budget", waited)
	}

	// Heal, then the same client completes a full tuning round trip.
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := p.WaitHealthy(hctx); err != nil {
		t.Fatalf("schedule did not heal: %v", err)
	}
	octx, ocancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ocancel()
	info, err := c.CreateSessionCtx(octx, service.CreateSessionRequest{ID: "heal", Workload: "TS", Input: 1, Seed: 7})
	if err != nil {
		t.Fatalf("create after heal: %v", err)
	}
	if _, err := c.SuggestCtx(octx, info.ID); err != nil {
		t.Fatalf("suggest after heal: %v", err)
	}
	obs, err := c.ObserveCtx(octx, info.ID, service.ObserveRequest{ExecTime: 70})
	if err != nil {
		t.Fatalf("observe after heal: %v", err)
	}
	if obs.Health != "" && obs.Health != "healthy" {
		t.Fatalf("session health %q after heal, want healthy", obs.Health)
	}
}

// A reset window tears connections down with RST; the client's retry
// policy rides it out once the window passes, and a budget too small for
// the retry schedule surfaces the typed budget error instead of burning
// attempts against a dead link.
func TestClientThroughResetWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("real fault windows take wall-clock time")
	}
	m := service.NewManager(service.NewMemStore(), 0)
	srv := httptest.NewServer(service.NewFleetServer(m, service.FleetOptions{}))
	defer srv.Close()
	upstream := strings.TrimPrefix(srv.URL, "http://")

	p, err := netchaos.Start("127.0.0.1:0", upstream, netchaos.Schedule{
		Seed:  2,
		Rules: []netchaos.Rule{{Kind: netchaos.KindReset, Start: 0, Duration: 250 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := client.New("http://" + p.Addr())
	// Backoff long enough that attempt 2+ lands after the window heals.
	c.Retry = client.RetryPolicy{MaxAttempts: 5, BaseDelay: 150 * time.Millisecond, MaxDelay: 400 * time.Millisecond}

	// A generous budget recovers through retries.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready did not recover through the reset window: %v", err)
	}

	// A fresh reset window with a budget smaller than one backoff step is
	// terminal with the typed error (transport failures still retriable,
	// but the budget cannot afford the wait).
	p2, err := netchaos.Start("127.0.0.1:0", upstream, netchaos.Schedule{
		Seed:  3,
		Rules: []netchaos.Rule{{Kind: netchaos.KindReset, Start: 0, Duration: 2 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	c2 := client.New("http://" + p2.Addr())
	c2.Retry = client.RetryPolicy{MaxAttempts: 5, BaseDelay: 500 * time.Millisecond, MaxDelay: time.Second}
	bctx, bcancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer bcancel()
	_, err = c2.Ready(bctx)
	if err == nil {
		t.Fatal("Ready succeeded through an active reset window")
	}
	if !errors.Is(err, client.ErrBudgetExhausted) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("starved retry error = %v, want ErrBudgetExhausted or DeadlineExceeded", err)
	}
}
