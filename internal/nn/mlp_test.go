package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deepcat/internal/mat"
)

func TestActivationValues(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float64
		want float64
	}{
		{Linear, -2.5, -2.5},
		{ReLU, -1, 0},
		{ReLU, 2, 2},
		{Tanh, 0, 0},
		{Sigmoid, 0, 0.5},
	}
	for _, c := range cases {
		if got := c.act.apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.act, c.x, got, c.want)
		}
	}
}

func TestActivationDerivMatchesFiniteDiff(t *testing.T) {
	const h = 1e-6
	for _, act := range []Activation{Linear, Tanh, Sigmoid} {
		for _, x := range []float64{-1.3, -0.2, 0.4, 2.1} {
			y := act.apply(x)
			want := (act.apply(x+h) - act.apply(x-h)) / (2 * h)
			if got := act.derivFromOutput(y); math.Abs(got-want) > 1e-5 {
				t.Errorf("%v'(%v) = %v, want %v", act, x, got, want)
			}
		}
	}
	// ReLU away from the kink.
	if ReLU.derivFromOutput(ReLU.apply(2)) != 1 || ReLU.derivFromOutput(ReLU.apply(-2)) != 0 {
		t.Error("ReLU derivative wrong")
	}
}

func TestActivationString(t *testing.T) {
	if Linear.String() != "linear" || ReLU.String() != "relu" ||
		Tanh.String() != "tanh" || Sigmoid.String() != "sigmoid" {
		t.Fatal("Activation.String wrong")
	}
	if Activation(99).String() != "Activation(99)" {
		t.Fatal("unknown activation String wrong")
	}
}

func newTestNet(seed int64) *MLP {
	rng := rand.New(rand.NewSource(seed))
	return NewMLP(rng, []int{4, 8, 8, 3}, []Activation{ReLU, Tanh, Linear})
}

func TestNewMLPShapes(t *testing.T) {
	m := newTestNet(1)
	if m.InSize() != 4 || m.OutSize() != 3 {
		t.Fatalf("sizes %d/%d", m.InSize(), m.OutSize())
	}
	want := 4*8 + 8 + 8*8 + 8 + 8*3 + 3
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
}

func TestNewMLPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fn := range []func(){
		func() { NewMLP(rng, []int{4}, nil) },
		func() { NewMLP(rng, []int{4, 3}, []Activation{ReLU, Tanh}) },
		func() { NewMLP(rng, []int{4, 0}, []Activation{ReLU}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewMLP did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestFinalLayerSmallInit(t *testing.T) {
	m := newTestNet(2)
	last := m.Layers[len(m.Layers)-1]
	if last.W.MaxAbs() > 3e-3 {
		t.Fatalf("final layer weight %v > 3e-3", last.W.MaxAbs())
	}
}

func TestForwardDeterministic(t *testing.T) {
	m := newTestNet(3)
	x := []float64{0.1, -0.2, 0.3, 0.4}
	a := m.Forward(x)
	b := m.Forward(x)
	if mat.Dist2(a, b) != 0 {
		t.Fatal("Forward not deterministic")
	}
}

func TestForwardTapeMatchesForward(t *testing.T) {
	m := newTestNet(4)
	x := []float64{1, 2, -1, 0.5}
	want := m.Forward(x)
	got := m.ForwardTape(x).Output()
	if mat.Dist2(want, got) > 1e-12 {
		t.Fatalf("tape output %v vs forward %v", got, want)
	}
}

func TestForwardWrongSizePanics(t *testing.T) {
	m := newTestNet(5)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size Forward did not panic")
		}
	}()
	m.Forward([]float64{1, 2})
}

// numericalParamGrad estimates d loss / d w for one scalar weight by central
// differences, where loss = 0.5*||f(x) - y||².
func numericalParamGrad(m *MLP, x, y []float64, set func(float64), get func() float64) float64 {
	const h = 1e-6
	loss := func() float64 {
		out := m.Forward(x)
		var s float64
		for i, o := range out {
			d := o - y[i]
			s += 0.5 * d * d
		}
		return s
	}
	orig := get()
	set(orig + h)
	lp := loss()
	set(orig - h)
	lm := loss()
	set(orig)
	return (lp - lm) / (2 * h)
}

func TestBackwardParamGradsMatchFiniteDiff(t *testing.T) {
	m := newTestNet(6)
	rng := rand.New(rand.NewSource(7))
	x := mat.RandVec(rng, 4, -1, 1)
	y := mat.RandVec(rng, 3, -1, 1)

	tape := m.ForwardTape(x)
	out := tape.Output()
	gradOut := make([]float64, len(out))
	mat.SubTo(gradOut, out, y) // d(0.5||out-y||²)/d out
	g := m.NewGrads()
	m.Backward(tape, gradOut, g)

	// Spot-check a sample of weights and biases in every layer.
	for li, l := range m.Layers {
		for _, idx := range []int{0, len(l.W.Data) / 2, len(l.W.Data) - 1} {
			got := g.W[li].Data[idx]
			want := numericalParamGrad(m, x, y,
				func(v float64) { l.W.Data[idx] = v },
				func() float64 { return l.W.Data[idx] })
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("layer %d W[%d]: grad %v, want %v", li, idx, got, want)
			}
		}
		bi := len(l.B) - 1
		got := g.B[li][bi]
		want := numericalParamGrad(m, x, y,
			func(v float64) { l.B[bi] = v },
			func() float64 { return l.B[bi] })
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("layer %d B[%d]: grad %v, want %v", li, bi, got, want)
		}
	}
}

func TestInputGradMatchesFiniteDiff(t *testing.T) {
	m := newTestNet(8)
	rng := rand.New(rand.NewSource(9))
	x := mat.RandVec(rng, 4, -1, 1)
	selector := []float64{1, 0, 0} // gradient of output[0]

	got := m.InputGrad(x, selector)
	const h = 1e-6
	for i := range x {
		xp := mat.CloneSlice(x)
		xm := mat.CloneSlice(x)
		xp[i] += h
		xm[i] -= h
		want := (m.Forward(xp)[0] - m.Forward(xm)[0]) / (2 * h)
		if math.Abs(got[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("input grad[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestBackwardWrongGradSizePanics(t *testing.T) {
	m := newTestNet(10)
	tape := m.ForwardTape([]float64{1, 2, 3, 4})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size Backward did not panic")
		}
	}()
	m.Backward(tape, []float64{1}, nil)
}

func TestGradsZero(t *testing.T) {
	m := newTestNet(11)
	g := m.NewGrads()
	tape := m.ForwardTape([]float64{1, 1, 1, 1})
	m.Backward(tape, []float64{1, 1, 1}, g)
	g.Zero()
	for i := range g.W {
		if g.W[i].MaxAbs() != 0 {
			t.Fatal("Zero left weight grads")
		}
		for _, b := range g.B[i] {
			if b != 0 {
				t.Fatal("Zero left bias grads")
			}
		}
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	m := newTestNet(12)
	c := m.Clone()
	x := []float64{0.5, -0.5, 0.25, 0}
	if mat.Dist2(m.Forward(x), c.Forward(x)) != 0 {
		t.Fatal("clone differs from original")
	}
	c.Layers[0].W.Set(0, 0, 99)
	if m.Layers[0].W.At(0, 0) == 99 {
		t.Fatal("clone shares storage")
	}
	m.CopyFrom(c)
	if m.Layers[0].W.At(0, 0) != 99 {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestSoftUpdate(t *testing.T) {
	m := newTestNet(13)
	target := m.Clone()
	src := newTestNet(14)
	target.SoftUpdate(src, 0.5)
	for li := range target.Layers {
		for k, v := range target.Layers[li].W.Data {
			want := 0.5*m.Layers[li].W.Data[k] + 0.5*src.Layers[li].W.Data[k]
			if math.Abs(v-want) > 1e-12 {
				t.Fatalf("layer %d weight %d: %v, want %v", li, k, v, want)
			}
		}
	}
	// tau = 1 copies the source exactly.
	t2 := m.Clone()
	t2.SoftUpdate(src, 1)
	x := []float64{1, 0, -1, 2}
	if mat.Dist2(t2.Forward(x), src.Forward(x)) > 1e-12 {
		t.Fatal("SoftUpdate(1) is not a copy")
	}
}

func TestSoftUpdateMismatchPanics(t *testing.T) {
	m := newTestNet(15)
	rng := rand.New(rand.NewSource(16))
	other := NewMLP(rng, []int{4, 5, 3}, []Activation{ReLU, Linear})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched SoftUpdate did not panic")
		}
	}()
	m.SoftUpdate(other, 0.5)
}

func TestAdamLearnsRegression(t *testing.T) {
	// Learn y = sin(pi * x0) * x1 on [-1,1]^2: a smooth nonlinear target.
	rng := rand.New(rand.NewSource(21))
	m := NewMLP(rng, []int{2, 32, 32, 1}, []Activation{ReLU, ReLU, Linear})
	opt := NewAdam(m, 1e-3)
	g := m.NewGrads()
	target := func(x []float64) float64 { return math.Sin(math.Pi*x[0]) * x[1] }

	const batch = 32
	var lastLoss float64
	for step := 0; step < 1500; step++ {
		g.Zero()
		var loss float64
		for b := 0; b < batch; b++ {
			x := mat.RandVec(rng, 2, -1, 1)
			y := target(x)
			tape := m.ForwardTape(x)
			d := tape.Output()[0] - y
			loss += 0.5 * d * d
			m.Backward(tape, []float64{d}, g)
		}
		opt.Step(m, g, 1.0/batch)
		lastLoss = loss / batch
	}
	if lastLoss > 0.01 {
		t.Fatalf("regression did not converge: final loss %v", lastLoss)
	}
	if opt.Steps() != 1500 {
		t.Fatalf("Steps = %d", opt.Steps())
	}
}

func TestAdamGradClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	m := NewMLP(rng, []int{1, 2, 1}, []Activation{Tanh, Linear})
	before := m.Clone()
	opt := NewAdam(m, 0.1)
	opt.MaxNorm = 1e-9 // clip essentially everything
	g := m.NewGrads()
	tape := m.ForwardTape([]float64{1})
	m.Backward(tape, []float64{1e6}, g)
	opt.Step(m, g, 1)
	// With the gradient clipped to ~0, Adam's normalized step is bounded by
	// lr; weights must not blow up.
	for li := range m.Layers {
		for k := range m.Layers[li].W.Data {
			d := math.Abs(m.Layers[li].W.Data[k] - before.Layers[li].W.Data[k])
			if d > 0.2 {
				t.Fatalf("clipped step moved weight by %v", d)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := newTestNet(31)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 0.2, 0.9}
	if mat.Dist2(m.Forward(x), got.Forward(x)) > 1e-15 {
		t.Fatal("loaded network differs")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("Load of garbage succeeded")
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := newTestNet(32)
	path := t.TempDir() + "/model.gob"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 1, 1, 1}
	if mat.Dist2(m.Forward(x), got.Forward(x)) > 1e-15 {
		t.Fatal("file round trip differs")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("LoadFile on missing path succeeded")
	}
}

func TestBackwardLinearityProperty(t *testing.T) {
	// Backprop is linear in the output gradient:
	// grad(a*g1 + g2) = a*grad(g1) + grad(g2) for parameter grads and
	// input grads alike.
	m := newTestNet(33)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := mat.RandVec(rng, 4, -1, 1)
		g1 := mat.RandVec(rng, 3, -1, 1)
		g2 := mat.RandVec(rng, 3, -1, 1)
		a := rng.Float64()*4 - 2

		tape := m.ForwardTape(x)
		comb := make([]float64, 3)
		for i := range comb {
			comb[i] = a*g1[i] + g2[i]
		}
		in1 := m.Backward(m.ForwardTape(x), g1, nil)
		in2 := m.Backward(m.ForwardTape(x), g2, nil)
		inC := m.Backward(tape, comb, nil)
		for i := range inC {
			if math.Abs(inC[i]-(a*in1[i]+in2[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
