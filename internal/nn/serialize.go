package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Save writes the network's architecture and weights to w using
// encoding/gob. Optimizer state is not saved; a reloaded network is meant
// for inference or fresh fine-tuning, matching the paper's offline-train /
// online-tune split.
func (m *MLP) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*MLP, error) {
	dec := gob.NewDecoder(r)
	var m MLP
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("nn: load: empty network")
	}
	for i, l := range m.Layers {
		if l == nil || l.W == nil || l.W.Rows*l.W.Cols != len(l.W.Data) || len(l.B) != l.W.Rows {
			return nil, fmt.Errorf("nn: load: malformed layer %d", i)
		}
	}
	return &m, nil
}

// SaveFile saves the network to the named file, creating or truncating it.
func (m *MLP) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: save file: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile loads a network from the named file.
func LoadFile(path string) (*MLP, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load file: %w", err)
	}
	defer f.Close()
	return Load(f)
}
