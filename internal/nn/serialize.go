package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"deepcat/internal/mat"
)

// Save writes the network's architecture and weights to w using
// encoding/gob. Optimizer state is not saved; a reloaded network is meant
// for inference or fresh fine-tuning, matching the paper's offline-train /
// online-tune split.
func (m *MLP) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*MLP, error) {
	dec := gob.NewDecoder(r)
	var m MLP
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("nn: load: empty network")
	}
	for i, l := range m.Layers {
		if l == nil || l.W == nil || l.W.Rows*l.W.Cols != len(l.W.Data) || len(l.B) != l.W.Rows {
			return nil, fmt.Errorf("nn: load: malformed layer %d", i)
		}
	}
	return &m, nil
}

// AdamState is the serializable state of an Adam optimizer: the step count
// and the per-parameter moment estimates. Capturing it alongside network
// weights lets a restored agent continue training with exactly the update
// dynamics it would have had without the save/load cycle.
type AdamState struct {
	T      int
	MW, VW []*mat.Matrix
	MB, VB [][]float64
}

// State returns a deep copy of the optimizer's mutable state. The
// hyper-parameters (LR, betas, eps, clipping) are not included; they are
// reconstructed from configuration when the owning agent is rebuilt.
func (a *Adam) State() AdamState {
	s := AdamState{
		T:  a.t,
		MW: make([]*mat.Matrix, len(a.mW)),
		VW: make([]*mat.Matrix, len(a.vW)),
		MB: make([][]float64, len(a.mB)),
		VB: make([][]float64, len(a.vB)),
	}
	for i := range a.mW {
		s.MW[i] = a.mW[i].Clone()
		s.VW[i] = a.vW[i].Clone()
		s.MB[i] = append([]float64(nil), a.mB[i]...)
		s.VB[i] = append([]float64(nil), a.vB[i]...)
	}
	return s
}

// SetState restores state captured by State into a, which must have been
// created for a network of the same architecture.
func (a *Adam) SetState(s AdamState) error {
	if len(s.MW) != len(a.mW) || len(s.VW) != len(a.vW) ||
		len(s.MB) != len(a.mB) || len(s.VB) != len(a.vB) {
		return fmt.Errorf("nn: adam state has %d layers, want %d", len(s.MW), len(a.mW))
	}
	for i := range a.mW {
		if s.MW[i] == nil || s.VW[i] == nil ||
			s.MW[i].Rows != a.mW[i].Rows || s.MW[i].Cols != a.mW[i].Cols ||
			s.VW[i].Rows != a.vW[i].Rows || s.VW[i].Cols != a.vW[i].Cols ||
			len(s.MB[i]) != len(a.mB[i]) || len(s.VB[i]) != len(a.vB[i]) {
			return fmt.Errorf("nn: adam state layer %d shape mismatch", i)
		}
	}
	a.t = s.T
	for i := range a.mW {
		a.mW[i].CopyFrom(s.MW[i])
		a.vW[i].CopyFrom(s.VW[i])
		copy(a.mB[i], s.MB[i])
		copy(a.vB[i], s.VB[i])
	}
	return nil
}

// SaveFile saves the network to the named file, creating or truncating it.
func (m *MLP) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: save file: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile loads a network from the named file.
func LoadFile(path string) (*MLP, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load file: %w", err)
	}
	defer f.Close()
	return Load(f)
}
