package nn

import (
	"fmt"
	"math/rand"

	"deepcat/internal/mat"
)

// Dense is one fully connected layer: y = act(W·x + b). Fields are exported
// so that networks serialize with encoding/gob.
type Dense struct {
	W   *mat.Matrix // out x in weight matrix
	B   []float64   // out bias vector
	Act Activation
}

// outSize returns the number of units in the layer.
func (d *Dense) outSize() int { return d.W.Rows }

// inSize returns the layer's input dimension.
func (d *Dense) inSize() int { return d.W.Cols }

// MLP is a multi-layer perceptron. Construct it with NewMLP; the zero value
// is not usable.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds a network with the given layer sizes and activations.
// sizes[0] is the input dimension; each subsequent entry is a layer width,
// so len(acts) must be len(sizes)-1. Weights use Xavier initialization from
// rng; the final layer additionally gets the small uniform init (±3e-3)
// customary for DDPG/TD3 output layers, which keeps initial policy outputs
// near the center of the action range.
func NewMLP(rng *rand.Rand, sizes []int, acts []Activation) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: NewMLP needs at least 2 sizes, got %d", len(sizes)))
	}
	if len(acts) != len(sizes)-1 {
		panic(fmt.Sprintf("nn: NewMLP got %d activations for %d layers", len(acts), len(sizes)-1))
	}
	m := &MLP{Layers: make([]*Dense, len(acts))}
	for i := range acts {
		in, out := sizes[i], sizes[i+1]
		if in <= 0 || out <= 0 {
			panic(fmt.Sprintf("nn: non-positive layer size %d -> %d", in, out))
		}
		l := &Dense{W: mat.New(out, in), B: make([]float64, out), Act: acts[i]}
		if i == len(acts)-1 {
			l.W.RandUniform(rng, 3e-3)
			for j := range l.B {
				l.B[j] = (rng.Float64()*2 - 1) * 3e-3
			}
		} else {
			l.W.XavierInit(rng, in, out)
		}
		m.Layers[i] = l
	}
	return m
}

// InSize returns the network input dimension.
func (m *MLP) InSize() int { return m.Layers[0].inSize() }

// OutSize returns the network output dimension.
func (m *MLP) OutSize() int { return m.Layers[len(m.Layers)-1].outSize() }

// NumParams returns the total number of trainable scalars.
func (m *MLP) NumParams() int {
	var n int
	for _, l := range m.Layers {
		n += l.W.Rows*l.W.Cols + len(l.B)
	}
	return n
}

// Forward runs inference on a single input vector and returns a freshly
// allocated output. It is safe for concurrent use as long as no goroutine is
// mutating the weights.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.InSize() {
		panic(fmt.Sprintf("nn: Forward input length %d, want %d", len(x), m.InSize()))
	}
	cur := x
	for _, l := range m.Layers {
		next := make([]float64, l.outSize())
		l.W.MulVecTo(next, cur)
		for i := range next {
			next[i] = l.Act.apply(next[i] + l.B[i])
		}
		cur = next
	}
	return cur
}

// Tape records the intermediate activations of one forward pass so that
// Backward can compute exact gradients for that sample.
type Tape struct {
	// inputs[i] is the input to layer i; inputs[0] aliases the caller's x.
	inputs [][]float64
	// outputs[i] is the post-activation output of layer i.
	outputs [][]float64
}

// Output returns the network output recorded on the tape.
func (t *Tape) Output() []float64 { return t.outputs[len(t.outputs)-1] }

// ForwardTape runs a forward pass recording every layer's activations.
func (m *MLP) ForwardTape(x []float64) *Tape {
	if len(x) != m.InSize() {
		panic(fmt.Sprintf("nn: ForwardTape input length %d, want %d", len(x), m.InSize()))
	}
	t := &Tape{
		inputs:  make([][]float64, len(m.Layers)),
		outputs: make([][]float64, len(m.Layers)),
	}
	cur := x
	for i, l := range m.Layers {
		t.inputs[i] = cur
		next := make([]float64, l.outSize())
		l.W.MulVecTo(next, cur)
		for j := range next {
			next[j] = l.Act.apply(next[j] + l.B[j])
		}
		t.outputs[i] = next
		cur = next
	}
	return t
}

// Grads accumulates parameter gradients with the same shapes as an MLP's
// layers. Create one with NewGrads and reuse it across a mini-batch, calling
// Zero between batches.
type Grads struct {
	W []*mat.Matrix
	B [][]float64
}

// NewGrads allocates a zeroed gradient accumulator shaped like m.
func (m *MLP) NewGrads() *Grads {
	g := &Grads{W: make([]*mat.Matrix, len(m.Layers)), B: make([][]float64, len(m.Layers))}
	for i, l := range m.Layers {
		g.W[i] = mat.New(l.W.Rows, l.W.Cols)
		g.B[i] = make([]float64, len(l.B))
	}
	return g
}

// Zero clears the accumulator.
func (g *Grads) Zero() {
	for i := range g.W {
		g.W[i].Zero()
		for j := range g.B[i] {
			g.B[i][j] = 0
		}
	}
}

// Backward backpropagates gradOut (∂loss/∂output for the sample recorded on
// tape) through the network, accumulating parameter gradients into g (which
// may be nil if only the input gradient is wanted) and returning
// ∂loss/∂input. The tape must come from this network's ForwardTape, and the
// weights must not have changed in between.
func (m *MLP) Backward(tape *Tape, gradOut []float64, g *Grads) []float64 {
	if len(gradOut) != m.OutSize() {
		panic(fmt.Sprintf("nn: Backward grad length %d, want %d", len(gradOut), m.OutSize()))
	}
	delta := mat.CloneSlice(gradOut)
	for i := len(m.Layers) - 1; i >= 0; i-- {
		l := m.Layers[i]
		out := tape.outputs[i]
		// delta := gradOut ⊙ σ'(y)
		for j := range delta {
			delta[j] *= l.Act.derivFromOutput(out[j])
		}
		if g != nil {
			g.W[i].AddOuterScaled(delta, tape.inputs[i], 1)
			for j, d := range delta {
				g.B[i][j] += d
			}
		}
		prev := make([]float64, l.inSize())
		l.W.MulVecTransTo(prev, delta)
		delta = prev
	}
	return delta
}

// InputGrad returns ∂(Σ selector·output)/∂input for input x without
// accumulating parameter gradients; the deterministic policy gradient uses
// it to obtain ∂Q/∂a from a critic.
func (m *MLP) InputGrad(x, selector []float64) []float64 {
	t := m.ForwardTape(x)
	return m.Backward(t, selector, nil)
}

// Clone returns a deep copy of the network (weights only; no optimizer
// state).
func (m *MLP) Clone() *MLP {
	c := &MLP{Layers: make([]*Dense, len(m.Layers))}
	for i, l := range m.Layers {
		c.Layers[i] = &Dense{W: l.W.Clone(), B: mat.CloneSlice(l.B), Act: l.Act}
	}
	return c
}

// CopyFrom copies src's weights into m. The architectures must match.
func (m *MLP) CopyFrom(src *MLP) {
	m.mustMatch(src)
	for i, l := range m.Layers {
		l.W.CopyFrom(src.Layers[i].W)
		copy(l.B, src.Layers[i].B)
	}
}

// SoftUpdate performs the Polyak averaging used for target networks:
// m = (1-tau)·m + tau·src.
func (m *MLP) SoftUpdate(src *MLP, tau float64) {
	m.mustMatch(src)
	for i, l := range m.Layers {
		l.W.Lerp(src.Layers[i].W, tau)
		for j := range l.B {
			l.B[j] = (1-tau)*l.B[j] + tau*src.Layers[i].B[j]
		}
	}
}

func (m *MLP) mustMatch(src *MLP) {
	if len(m.Layers) != len(src.Layers) {
		panic(fmt.Sprintf("nn: architecture mismatch: %d vs %d layers", len(m.Layers), len(src.Layers)))
	}
	for i, l := range m.Layers {
		s := src.Layers[i]
		if l.W.Rows != s.W.Rows || l.W.Cols != s.W.Cols {
			panic(fmt.Sprintf("nn: layer %d shape mismatch %dx%d vs %dx%d", i, l.W.Rows, l.W.Cols, s.W.Rows, s.W.Cols))
		}
	}
}
