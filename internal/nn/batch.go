package nn

import (
	"fmt"
	"runtime"
	"sync"

	"deepcat/internal/mat"
)

// Batched inference.
//
// ForwardBatch evaluates K input rows through the network with one
// lane-major weight traversal per layer (a GEMM) instead of K per-sample
// passes, reusing buffers from a caller-owned Arena so the steady state
// allocates nothing. Per-lane arithmetic follows the exact operation
// sequence of Forward — see the bit-exactness contract in mat/lanes.go —
// so a batched pass is bit-identical to K sequential Forward calls. The
// property tests in batch_test.go and the Twin-Q equivalence test in
// internal/core pin this down.
//
// Training is untouched: ForwardTape/Backward remain per-sample, own their
// tape allocations, and never see an Arena.

// Arena owns the scratch buffers of batched forward passes.
//
// Ownership rules: an Arena has a single owner at a time — calls that take
// an Arena may reuse and overwrite everything in it, and slices handed out
// by previous passes become invalid on the next call. It is NOT safe for
// concurrent use; callers that share one across goroutines must serialize
// (the tuning service holds its per-session mutex around Suggest, which is
// what the -race stress test exercises). Zero value is ready to use.
type Arena struct {
	// Workers caps the goroutines one batched pass may shard lanes across;
	// 0 means GOMAXPROCS, 1 disables sharding. Sharding never changes
	// results: lanes are independent, so any partition produces identical
	// bits.
	Workers int

	buf  []float64
	off  int
	outs [][]float64 // per-layer output views, reused across calls
	run  batchRun    // in-flight pass state, reused so shards need no closure
}

// batchRun carries one batched pass's state so lane shards can run as plain
// method calls (including via `go`) without allocating a closure per pass.
type batchRun struct {
	m           *MLP
	xt, init    []float64
	dst         []float64
	outs        [][]float64
	colOff      int
	xDim, kp, k int
}

// NewArena returns an empty arena. Buffers grow on demand and are retained,
// so a warmed arena serves any same-shaped workload without allocating.
func NewArena() *Arena { return &Arena{} }

func (a *Arena) reset() { a.off = 0 }

// grab returns a length-n scratch view. Contents are unspecified.
func (a *Arena) grab(n int) []float64 {
	if a.off+n > len(a.buf) {
		grown := 2*len(a.buf) + n
		a.buf = make([]float64, grown)
		a.off = 0 // older views keep their previous backing array
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// minShardLanes is the smallest lane count worth a goroutine; below it the
// spawn overhead exceeds the kernel time.
const minShardLanes = 16

// ForwardBatch runs inference on k row-major input vectors packed in x
// (k x InSize) and writes the k outputs row-major into dst (k x OutSize).
// Results are bit-identical to calling Forward on each row in turn.
func (m *MLP) ForwardBatch(ar *Arena, x []float64, k int, dst []float64) {
	m.forwardBatch(ar, nil, nil, 0, x, m.InSize(), nil, 0, k, dst)
}

// ForwardBatchPrefix runs inference on k rows that share a common prefix:
// row r of the logical input is concat(prefix, suffix[r]). The first
// layer's contribution of the prefix is computed once and seeds every
// lane's accumulator, which is bit-identical to evaluating the
// concatenated row because the per-unit dot product accumulates left to
// right. The Twin-Q scorer uses this to fold the state embedding out of
// the per-candidate cost.
func (m *MLP) ForwardBatchPrefix(ar *Arena, prefix, suffix []float64, k int, dst []float64) {
	if len(prefix) == 0 || len(prefix) >= m.InSize() {
		panic(fmt.Sprintf("nn: ForwardBatchPrefix prefix length %d, want 1..%d", len(prefix), m.InSize()-1))
	}
	m.forwardBatch(ar, prefix, nil, len(prefix), suffix, m.InSize()-len(prefix), nil, 0, k, dst)
}

// ForwardBatchSeeded is ForwardBatchPrefix with the prefix contribution
// already computed: init must hold layer 0's partial dot products over the
// first colOff input columns (mat.Matrix.MulVecColsTo). Callers that score
// several batches against one unchanged prefix — the Twin-Q search scores a
// few chunks per Suggest — hoist that computation out of the per-chunk cost.
// init is read, never written, and must not alias ar's buffers.
func (m *MLP) ForwardBatchSeeded(ar *Arena, init []float64, colOff int, suffix []float64, k int, dst []float64) {
	m.checkSeeded(init, colOff)
	m.forwardBatch(ar, nil, init, colOff, suffix, m.InSize()-colOff, nil, 0, k, dst)
}

// ForwardBatchSeededLanes is ForwardBatchSeeded on input that is already
// lane-major: xt holds xDim = InSize()-colOff columns of kp lanes each (kp a
// multiple of 8, >= k), the layout PackLanes produces. Pad lanes must hold
// finite values — zero, or stale values from a reused buffer — so they pass
// harmlessly through the activations; their results never reach dst.
// Callers that score one candidate batch through several networks (the
// Twin-Q scorer runs both critics over the same chunk) pack once and share
// xt; it is read, never written, and must not alias ar's buffers.
func (m *MLP) ForwardBatchSeededLanes(ar *Arena, init []float64, colOff int, xt []float64, kp, k int, dst []float64) {
	m.checkSeeded(init, colOff)
	if kp < k || kp%8 != 0 {
		panic(fmt.Sprintf("nn: ForwardBatchSeededLanes kp %d for k %d, want a multiple of 8 >= k", kp, k))
	}
	if len(xt) < (m.InSize()-colOff)*kp {
		panic(fmt.Sprintf("nn: ForwardBatchSeededLanes xt len %d, want %d", len(xt), (m.InSize()-colOff)*kp))
	}
	m.forwardBatch(ar, nil, init, colOff, nil, m.InSize()-colOff, xt, kp, k, dst)
}

func (m *MLP) checkSeeded(init []float64, colOff int) {
	if colOff <= 0 || colOff >= m.InSize() {
		panic(fmt.Sprintf("nn: seeded batch colOff %d, want 1..%d", colOff, m.InSize()-1))
	}
	if len(init) != m.Layers[0].outSize() {
		panic(fmt.Sprintf("nn: seeded batch init len %d, want %d", len(init), m.Layers[0].outSize()))
	}
}

// PackLanes transposes k row-major xDim-wide rows of x into lane-major form
// in dst: column j of the batch occupies dst[j*kp : j*kp+kp] with row r in
// lane r and the kp-k pad lanes zeroed (pad lanes must stay finite so they
// pass harmlessly through activations). kp must be a multiple of 8 >= k.
func PackLanes(dst, x []float64, xDim, k, kp int) {
	if kp < k || kp%8 != 0 {
		panic(fmt.Sprintf("nn: PackLanes kp %d for k %d, want a multiple of 8 >= k", kp, k))
	}
	if len(x) < k*xDim || len(dst) < xDim*kp {
		panic(fmt.Sprintf("nn: PackLanes buffer lengths %d/%d, want >= %d/%d", len(x), len(dst), k*xDim, xDim*kp))
	}
	for j := 0; j < xDim; j++ {
		col := dst[j*kp : j*kp+kp]
		for r := 0; r < k; r++ {
			col[r] = x[r*xDim+j]
		}
		for r := k; r < kp; r++ {
			col[r] = 0
		}
	}
}

func (m *MLP) forwardBatch(ar *Arena, prefix, init []float64, colOff int, x []float64, xDim int, xtIn []float64, kpIn, k int, dst []float64) {
	if k <= 0 {
		panic(fmt.Sprintf("nn: forward batch size %d", k))
	}
	if xtIn == nil && len(x) < k*xDim {
		panic(fmt.Sprintf("nn: forward batch input len %d, want %d", len(x), k*xDim))
	}
	if len(dst) < k*m.OutSize() {
		panic(fmt.Sprintf("nn: forward batch dst len %d, want %d", len(dst), k*m.OutSize()))
	}
	kp := kpIn
	if xtIn == nil {
		kp = (k + 7) &^ 7
	}
	ar.reset()

	// Pack the input lane-major unless the caller already did.
	xt := xtIn
	if xt == nil {
		xt = ar.grab(xDim * kp)
		PackLanes(xt, x, xDim, k, kp)
	}

	// The prefix contribution seeds every lane of layer 0.
	if prefix != nil {
		init = ar.grab(m.Layers[0].outSize())
		m.Layers[0].W.MulVecColsTo(init, prefix, 0)
	}
	if init == nil {
		colOff = 0
	}

	outs := ar.outs[:0]
	for _, l := range m.Layers {
		outs = append(outs, ar.grab(l.outSize()*kp))
	}
	ar.outs = outs

	run := &ar.run
	*run = batchRun{m: m, xt: xt, init: init, dst: dst, outs: outs,
		colOff: colOff, xDim: xDim, kp: kp, k: k}

	nw := ar.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if max := kp / minShardLanes; nw > max {
		nw = max
	}
	if nw <= 1 {
		run.shard(0, kp, nil)
		return
	}
	// Lane ranges are multiples of 8 so SIMD backends never split a vector.
	per := (kp/nw + 7) &^ 7
	var wg sync.WaitGroup
	for r0 := 0; r0 < kp; r0 += per {
		lanes := per
		if r0+lanes > kp {
			lanes = kp - r0
		}
		wg.Add(1)
		go run.shard(r0, lanes, &wg)
	}
	wg.Wait()
}

// shard evaluates lanes [r0, r0+lanes) through every layer and unpacks the
// live ones into dst. Lanes are independent, so disjoint shards touch
// disjoint memory and any partition yields identical bits.
func (b *batchRun) shard(r0, lanes int, wg *sync.WaitGroup) {
	if wg != nil {
		defer wg.Done()
	}
	// The transcendental post-pass only needs the live lanes: pad lanes
	// never reach dst and each lane only ever feeds its own accumulators
	// downstream, so skipping their (expensive) exp calls changes nothing.
	live := b.k - r0
	if live > lanes {
		live = lanes
	}
	cur := b.xt[r0:]
	for li, l := range b.m.Layers {
		out := b.outs[li][r0:]
		opt := mat.LaneOpts{Bias: l.B, ReLU: l.Act == ReLU}
		if li == 0 && b.colOff > 0 {
			opt.ColOff = b.colOff
			opt.NCols = b.xDim
			opt.Init = b.init
		}
		l.W.MulLanes(out, cur, b.kp, lanes, opt)
		if l.Act != ReLU && l.Act != Linear {
			// Kernel applied the bias; finish with the transcendental.
			for i := 0; i < l.outSize(); i++ {
				row := out[i*b.kp : i*b.kp+live]
				for r := range row {
					row[r] = l.Act.apply(row[r])
				}
			}
		}
		cur = out
	}
	// Unpack this shard's live lanes row-major into dst.
	last := b.outs[len(b.outs)-1][r0:]
	outDim := b.m.OutSize()
	for r := 0; r < lanes && r0+r < b.k; r++ {
		row := b.dst[(r0+r)*outDim : (r0+r+1)*outDim]
		for i := range row {
			row[i] = last[i*b.kp+r]
		}
	}
}
