package nn

import (
	"math/rand"
	"testing"

	"deepcat/internal/mat"
)

// benchNet mirrors the tuner networks: 41 inputs (state 9 + action 32),
// two hidden layers of 64, scalar output.
func benchNet(b *testing.B) *MLP {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return NewMLP(rng, []int{41, 64, 64, 1}, []Activation{ReLU, ReLU, Linear})
}

func BenchmarkForward(b *testing.B) {
	m := benchNet(b)
	x := mat.RandVec(rand.New(rand.NewSource(2)), 41, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkForwardBackward(b *testing.B) {
	m := benchNet(b)
	x := mat.RandVec(rand.New(rand.NewSource(3)), 41, 0, 1)
	g := m.NewGrads()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tape := m.ForwardTape(x)
		m.Backward(tape, []float64{1}, g)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	m := benchNet(b)
	g := m.NewGrads()
	tape := m.ForwardTape(mat.RandVec(rand.New(rand.NewSource(4)), 41, 0, 1))
	m.Backward(tape, []float64{1}, g)
	opt := NewAdam(m, 1e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(m, g, 1)
	}
}

func BenchmarkSoftUpdate(b *testing.B) {
	m := benchNet(b)
	target := m.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target.SoftUpdate(m, 0.005)
	}
}
