package nn

import (
	"math"

	"deepcat/internal/mat"
)

// Adam implements the Adam optimizer (Kingma & Ba, 2015) over an MLP's
// parameters. One Adam instance is bound to one network's architecture; it
// keeps per-parameter first and second moment estimates.
type Adam struct {
	LR      float64 // learning rate (alpha)
	Beta1   float64 // first-moment decay
	Beta2   float64 // second-moment decay
	Eps     float64 // numerical stabilizer
	MaxNorm float64 // if > 0, global gradient-norm clipping threshold

	t  int
	mW []*mat.Matrix
	vW []*mat.Matrix
	mB [][]float64
	vB [][]float64
}

// NewAdam creates an optimizer for network m with the given learning rate
// and conventional defaults beta1=0.9, beta2=0.999, eps=1e-8.
func NewAdam(m *MLP, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a.mW = make([]*mat.Matrix, len(m.Layers))
	a.vW = make([]*mat.Matrix, len(m.Layers))
	a.mB = make([][]float64, len(m.Layers))
	a.vB = make([][]float64, len(m.Layers))
	for i, l := range m.Layers {
		a.mW[i] = mat.New(l.W.Rows, l.W.Cols)
		a.vW[i] = mat.New(l.W.Rows, l.W.Cols)
		a.mB[i] = make([]float64, len(l.B))
		a.vB[i] = make([]float64, len(l.B))
	}
	return a
}

// Steps returns the number of optimizer steps taken so far.
func (a *Adam) Steps() int { return a.t }

// Step applies one Adam update to m using the accumulated gradients in g
// scaled by scale (callers typically pass 1/batchSize). If MaxNorm > 0 the
// scaled gradient is first clipped to that global L2 norm.
func (a *Adam) Step(m *MLP, g *Grads, scale float64) {
	if a.MaxNorm > 0 {
		var sq float64
		for i := range g.W {
			for _, v := range g.W[i].Data {
				sv := v * scale
				sq += sv * sv
			}
			for _, v := range g.B[i] {
				sv := v * scale
				sq += sv * sv
			}
		}
		if norm := math.Sqrt(sq); norm > a.MaxNorm {
			scale *= a.MaxNorm / norm
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, l := range m.Layers {
		mw, vw := a.mW[i].Data, a.vW[i].Data
		gw := g.W[i].Data
		w := l.W.Data
		for k, gv := range gw {
			gv *= scale
			mw[k] = a.Beta1*mw[k] + (1-a.Beta1)*gv
			vw[k] = a.Beta2*vw[k] + (1-a.Beta2)*gv*gv
			w[k] -= a.LR * (mw[k] / c1) / (math.Sqrt(vw[k]/c2) + a.Eps)
		}
		mb, vb := a.mB[i], a.vB[i]
		gb := g.B[i]
		for k, gv := range gb {
			gv *= scale
			mb[k] = a.Beta1*mb[k] + (1-a.Beta1)*gv
			vb[k] = a.Beta2*vb[k] + (1-a.Beta2)*gv*gv
			l.B[k] -= a.LR * (mb[k] / c1) / (math.Sqrt(vb[k]/c2) + a.Eps)
		}
	}
}
