package nn

import (
	"math"
	"math/rand"
	"testing"

	"deepcat/internal/mat"
)

// randNet builds a random architecture with random activations per layer.
func randNet(rng *rand.Rand) *MLP {
	depth := 1 + rng.Intn(3)
	sizes := make([]int, depth+1)
	acts := make([]Activation, depth)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(40)
	}
	all := []Activation{Linear, ReLU, Tanh, Sigmoid}
	for i := range acts {
		acts[i] = all[rng.Intn(len(all))]
	}
	return NewMLP(rng, sizes, acts)
}

// TestForwardBatchMatchesForward is the batched-inference bit-exactness
// property: for random shapes, activations, batch sizes and worker counts,
// ForwardBatch must reproduce K sequential Forward calls bit for bit.
func TestForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ar := NewArena()
	for trial := 0; trial < 80; trial++ {
		m := randNet(rng)
		k := 1 + rng.Intn(70)
		ar.Workers = rng.Intn(4) // 0 = GOMAXPROCS
		in, out := m.InSize(), m.OutSize()
		x := make([]float64, k*in)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		dst := make([]float64, k*out)
		for i := range dst {
			dst[i] = math.NaN()
		}
		m.ForwardBatch(ar, x, k, dst)
		for r := 0; r < k; r++ {
			want := m.Forward(x[r*in : (r+1)*in])
			for i, w := range want {
				got := dst[r*out+i]
				if got != w || math.Signbit(got) != math.Signbit(w) {
					t.Fatalf("trial %d (in=%d out=%d k=%d workers=%d): out[%d][%d] = %v, want %v",
						trial, in, out, k, ar.Workers, r, i, got, w)
				}
			}
		}
	}
}

// TestForwardBatchPrefixMatchesForward checks the shared-prefix form against
// sequential Forward over the concatenated inputs — the shape the Twin-Q
// scorer relies on (state prefix hoisted out of the per-candidate cost).
func TestForwardBatchPrefixMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ar := NewArena()
	for trial := 0; trial < 60; trial++ {
		m := randNet(rng)
		in := m.InSize()
		if in < 2 {
			continue
		}
		pre := 1 + rng.Intn(in-1)
		suf := in - pre
		k := 1 + rng.Intn(40)
		prefix := mat.RandVec(rng, pre, -2, 2)
		suffix := make([]float64, k*suf)
		for i := range suffix {
			suffix[i] = rng.NormFloat64()
		}
		out := m.OutSize()
		dst := make([]float64, k*out)
		m.ForwardBatchPrefix(ar, prefix, suffix, k, dst)

		full := make([]float64, in)
		copy(full, prefix)
		for r := 0; r < k; r++ {
			copy(full[pre:], suffix[r*suf:(r+1)*suf])
			want := m.Forward(full)
			for i, w := range want {
				if got := dst[r*out+i]; got != w {
					t.Fatalf("trial %d (in=%d pre=%d k=%d): out[%d][%d] = %v, want %v",
						trial, in, pre, k, r, i, got, w)
				}
			}
		}
	}
}

// TestForwardBatchSteadyStateAllocs verifies a warmed arena serves repeated
// same-shaped batches without allocating — the property the Suggest hot path
// depends on.
func TestForwardBatchSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := NewMLP(rng, []int{41, 64, 64, 1}, []Activation{ReLU, ReLU, Linear})
	ar := NewArena()
	ar.Workers = 1
	const k = 64
	x := mat.RandVec(rng, k*41, -1, 1)
	dst := make([]float64, k)
	m.ForwardBatch(ar, x, k, dst) // warm the arena
	allocs := testing.AllocsPerRun(50, func() {
		m.ForwardBatch(ar, x, k, dst)
	})
	if allocs != 0 {
		t.Fatalf("warmed ForwardBatch allocates %v per run, want 0", allocs)
	}
}

// TestForwardBatchArgChecks covers the panic contract.
func TestForwardBatchArgChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := NewMLP(rng, []int{4, 3}, []Activation{ReLU})
	ar := NewArena()
	mustPanic := func(desc string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", desc)
			}
		}()
		f()
	}
	mustPanic("zero batch", func() { m.ForwardBatch(ar, nil, 0, nil) })
	mustPanic("short input", func() { m.ForwardBatch(ar, make([]float64, 7), 2, make([]float64, 6)) })
	mustPanic("short dst", func() { m.ForwardBatch(ar, make([]float64, 8), 2, make([]float64, 5)) })
	mustPanic("empty prefix", func() { m.ForwardBatchPrefix(ar, nil, make([]float64, 8), 2, make([]float64, 6)) })
	mustPanic("prefix too wide", func() { m.ForwardBatchPrefix(ar, make([]float64, 4), nil, 2, make([]float64, 6)) })
}

// BenchmarkForwardBatch is the batched counterpart of BenchmarkForward at the
// Suggest batch size: 64 candidates through the 41->64->64->1 critic shape.
// Compare ns/op here against 64x BenchmarkForward for the per-sample speedup.
func BenchmarkForwardBatch(b *testing.B) {
	m := benchNet(b)
	const k = 64
	x := mat.RandVec(rand.New(rand.NewSource(5)), k*41, 0, 1)
	dst := make([]float64, k)
	ar := NewArena()
	ar.Workers = 1
	m.ForwardBatch(ar, x, k, dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatch(ar, x, k, dst)
	}
}
