// Package nn implements the small feed-forward neural networks, manual
// backpropagation and Adam optimization that back the DDPG and TD3 agents of
// the DeepCAT reproduction. Everything is pure Go and deterministic given a
// seeded *rand.Rand.
//
// The package is built around three types:
//
//   - MLP: a multi-layer perceptron with per-layer activations.
//   - Grads: a gradient accumulator with the same shape as an MLP.
//   - Adam: the optimizer, holding first/second-moment state per parameter.
//
// Training uses per-sample forward passes that record a Tape, per-sample
// backward passes that accumulate into Grads, and one optimizer step per
// mini-batch. Networks of the size used here (a few tens of thousands of
// weights) train in microseconds per sample, which is ample for the paper's
// workloads.
package nn

import (
	"fmt"
	"math"
)

// Activation identifies an element-wise activation function.
type Activation int

// Supported activations. Linear is the identity and is typically used on
// critic outputs; Tanh bounds actor outputs; ReLU is the default hidden
// activation; Sigmoid maps to (0,1) and suits [0,1]-normalized action
// spaces.
const (
	Linear Activation = iota
	ReLU
	Tanh
	Sigmoid
)

// String returns the conventional lowercase name of the activation.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// apply computes the activation of x.
func (a Activation) apply(x float64) float64 {
	switch a {
	case Linear:
		return x
	case ReLU:
		if x > 0 {
			return x
		}
		return 0
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(a)))
	}
}

// derivFromOutput computes the derivative dσ/dx expressed in terms of the
// activation output y = σ(x). All supported activations admit this form,
// which lets the backward pass avoid storing pre-activations.
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case Linear:
		return 1
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(a)))
	}
}
