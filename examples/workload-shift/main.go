// Workload shift (paper §5.3.1): a DeepCAT model trained offline on one
// workload tunes a different one. The example trains on WordCount and
// TeraSort, then online-tunes PageRank with each model, comparing against a
// model trained natively on PageRank.
//
//	go run ./examples/workload-shift
package main

import (
	"fmt"
	"log"
	"math/rand"

	"deepcat/internal/core"
	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

func main() {
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	target := mustEnv(sim, "PR")
	fmt.Printf("target: %s, default %.1fs\n\n", target.Label(), target.DefaultTime())

	for _, src := range []string{"PR", "WC", "TS"} {
		srcEnv := mustEnv(sim, src)
		cfg := core.DefaultConfig(srcEnv.StateDim(), srcEnv.Space().Dim())
		tuner, err := core.New(rand.New(rand.NewSource(7)), cfg)
		if err != nil {
			log.Fatal(err)
		}
		tuner.OfflineTrain(srcEnv, 2000, nil)

		// The offline model transfers as-is; only the five online
		// fine-tuning steps see the new workload.
		report := tuner.OnlineTune(target)
		fmt.Printf("M_%s->PR: best %.1fs (%.2fx over default), tuning cost %.1fs\n",
			src, report.BestTime, report.Speedup(target.DefaultTime()), report.TotalCost())
	}

	fmt.Println("\nThe cross-workload models land close to the native one: the DRL")
	fmt.Println("policy plus the Twin-Q Optimizer adapt within the online budget.")
}

func mustEnv(sim *sparksim.Simulator, short string) *env.SparkEnv {
	w, err := sparksim.WorkloadByShort(short)
	if err != nil {
		log.Fatal(err)
	}
	return env.NewSparkEnv(sim, w, 0)
}
