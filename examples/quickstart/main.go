// Quickstart: train a DeepCAT model offline on the simulated Spark cluster
// and fine-tune it online on TeraSort, end to end in under a minute.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"deepcat/internal/core"
	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

func main() {
	// 1. The environment: a 3-node Spark/YARN/HDFS cluster running
	// TeraSort on its smallest dataset (3.2 GB).
	sim := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	ts, err := sparksim.WorkloadByShort("TS")
	if err != nil {
		log.Fatal(err)
	}
	e := env.NewSparkEnv(sim, ts, 0)
	fmt.Printf("tuning %s; default configuration takes %.1fs\n", e.Label(), e.DefaultTime())

	// 2. Offline training: TD3 with reward-driven prioritized experience
	// replay, interacting with the standard environment.
	cfg := core.DefaultConfig(e.StateDim(), e.Space().Dim())
	tuner, err := core.New(rand.New(rand.NewSource(42)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("offline training (2000 iterations)...")
	trace := tuner.OfflineTrain(e, 2000, nil)
	fmt.Printf("collected %d high-reward / %d low-reward transitions\n",
		trace.HighPool, trace.LowPool)

	// 3. Online tuning: five steps, each gated by the Twin-Q Optimizer so
	// sub-optimal recommendations are repaired before being paid for.
	report := tuner.OnlineTune(e)
	fmt.Println()
	fmt.Print(report.String())

	fmt.Printf("\nspeedup over default: %.2fx\n", report.Speedup(e.DefaultTime()))
	fmt.Printf("total online tuning cost: %.1fs\n", report.TotalCost())
	fmt.Printf("\nrecommended configuration:\n%s",
		e.Space().Describe(e.Space().Denormalize(report.BestAction)))
}
