// Hardware migration (paper §5.3.2): a DeepCAT model trained on the
// bare-metal Cluster-A tunes the same workload on the smaller, virtualized
// Cluster-B. Recommendations outside the new environment's physical bounds
// are clipped to the boundary, per the paper's rule.
//
//	go run ./examples/hardware-migration
package main

import (
	"fmt"
	"log"
	"math/rand"

	"deepcat/internal/core"
	"deepcat/internal/env"
	"deepcat/internal/sparksim"
)

func main() {
	simA := sparksim.NewSimulator(sparksim.ClusterA(), 1)
	simB := sparksim.NewSimulator(sparksim.ClusterB(), 1)
	fmt.Println("train on:", simA.Cluster().String())
	fmt.Println("tune on: ", simB.Cluster().String())

	wc, err := sparksim.WorkloadByShort("WC")
	if err != nil {
		log.Fatal(err)
	}
	trainEnv := env.NewSparkEnv(simA, wc, 0)

	cfg := core.DefaultConfig(trainEnv.StateDim(), trainEnv.Space().Dim())
	tuner, err := core.New(rand.New(rand.NewSource(11)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noffline training on Cluster-A...")
	tuner.OfflineTrain(trainEnv, 2000, nil)

	// Cluster-B environment with boundary clamping: a 10 GB executor
	// request cannot be scheduled on an 8 GB node, so out-of-scope values
	// are clipped instead of failing the job.
	target := env.NewSparkEnv(simB, wc, 0)
	target.Clamp = true
	fmt.Printf("Cluster-B default time: %.1fs\n\n", target.DefaultTime())

	report := tuner.OnlineTune(target)
	fmt.Print(report.String())
	fmt.Printf("\nspeedup over Cluster-B default: %.2fx\n", report.Speedup(target.DefaultTime()))
	fmt.Printf("total online tuning cost: %.1fs\n", report.TotalCost())
}
