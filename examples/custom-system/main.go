// Custom system: DeepCAT is not tied to Spark. Any system exposing the
// env.Environment interface — a configuration space, an evaluation
// callback, a state vector — can be tuned. This example defines a toy web
// service (thread pool, cache, timeouts, GC knobs) with a synthetic latency
// model and tunes it end to end.
//
//	go run ./examples/custom-system
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"deepcat/internal/config"
	"deepcat/internal/core"
	"deepcat/internal/env"
)

// webService is a synthetic tunable system: p99 latency (ms) of a request
// pipeline as a function of six knobs. It implements env.Environment.
type webService struct {
	space *config.Space
	rng   *rand.Rand
}

func newWebService() *webService {
	space, err := config.NewSpace([]config.Param{
		{Name: "worker.threads", Component: "pool", Kind: config.Numeric, Min: 1, Max: 64, Default: 4, Integer: true},
		{Name: "pool.queue.size", Component: "pool", Kind: config.Numeric, Min: 16, Max: 1024, Default: 128, Integer: true},
		{Name: "cache.size.mb", Component: "cache", Kind: config.Numeric, Min: 16, Max: 2048, Default: 64, Integer: true, Unit: "MB"},
		{Name: "cache.policy", Component: "cache", Kind: config.Categorical, Choices: []string{"lru", "lfu", "arc"}, Default: 0},
		{Name: "downstream.timeout.ms", Component: "net", Kind: config.Numeric, Min: 50, Max: 2000, Default: 1000, Integer: true, Unit: "ms"},
		{Name: "gc.aggressive", Component: "runtime", Kind: config.Bool, Default: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	return &webService{space: space, rng: rand.New(rand.NewSource(5))}
}

func (s *webService) Space() *config.Space { return s.space }
func (s *webService) StateDim() int        { return 3 }
func (s *webService) MetricsDim() int      { return 3 }
func (s *webService) DefaultTime() float64 { return s.latency(s.space.DefaultValues()) }
func (s *webService) IdleState() []float64 { return []float64{0.2, 0.2, 0.2} }
func (s *webService) Label() string        { return "webservice" }

// latency is the synthetic p99 model: queueing at the worker pool, cache
// hit rate vs memory pressure, and timeout-driven retry amplification.
func (s *webService) latency(v []float64) float64 {
	threads, queue, cacheMB := v[0], v[1], v[2]
	policy, timeout, gc := v[3], v[4], v[5]

	const offeredLoad = 24.0 // requests in flight
	utilization := offeredLoad / threads
	queueing := 5 * utilization * utilization
	if utilization > 1 {
		queueing += 40 * (utilization - 1) // saturated pool
	}
	if queue < offeredLoad*4 {
		queueing += 15 // rejects/retries on a short queue
	}

	hitRate := 1 - math.Exp(-cacheMB/300)
	if policy == 2 { // arc
		hitRate = math.Min(1, hitRate*1.08)
	}
	backendMs := 120 * (1 - hitRate)

	memPressure := cacheMB / 2048
	gcPause := 8 + 30*memPressure
	if gc == 1 {
		gcPause = 4 + 10*memPressure // aggressive GC trades CPU for pauses
		queueing *= 1.15
	}

	retry := 1.0
	if timeout < 150 {
		retry = 1.6 // premature timeouts retry the slow tail
	} else if timeout > 1200 {
		retry = 1.2 // stragglers hold workers
	}

	return (10 + queueing + backendMs + gcPause) * retry
}

func (s *webService) Evaluate(u []float64) env.Outcome {
	v := s.space.Denormalize(u)
	l := s.latency(v) * (1 + 0.02*s.rng.NormFloat64())
	util := 24.0 / v[0]
	return env.Outcome{
		ExecTime: l,
		State:    []float64{math.Min(util, 4), v[2] / 2048, l / 100},
		Metrics:  []float64{l, util, v[2]},
	}
}

func main() {
	svc := newWebService()
	fmt.Printf("default p99 latency: %.1f ms\n", svc.DefaultTime())

	cfg := core.DefaultConfig(svc.StateDim(), svc.Space().Dim())
	// Latency is in milliseconds, not minutes: evaluations are cheap here,
	// so allow more online steps.
	cfg.OnlineSteps = 10
	tuner, err := core.New(rand.New(rand.NewSource(3)), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("offline training (1500 iterations)...")
	tuner.OfflineTrain(svc, 1500, nil)

	report := tuner.OnlineTune(svc)
	fmt.Printf("\nbest p99 latency found: %.1f ms (%.2fx better than default)\n",
		report.BestTime, report.Speedup(svc.DefaultTime()))
	fmt.Printf("\nrecommended configuration:\n%s",
		svc.Space().Describe(svc.Space().Denormalize(report.BestAction)))
}
