GO ?= go

.PHONY: all build test race vet fmt check bench bench-warehouse bench-all benchdiff cover

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The full gate CI runs: formatting, static checks, build, race-enabled tests.
check: fmt vet build race

bench:
	$(GO) test -bench=. -benchmem

# Warehouse ingest throughput only; emits BENCH_warehouse.json for CI to
# archive. Fast enough to run on every push. The benchmark writes the JSON
# as a side effect, so assert the file actually appeared — otherwise a
# renamed benchmark makes this target succeed while producing nothing.
bench-warehouse:
	rm -f BENCH_warehouse.json
	$(GO) test -run='^$$' -bench=BenchmarkWarehouseIngest -benchmem .
	test -f BENCH_warehouse.json || { echo "bench-warehouse: BENCH_warehouse.json was not emitted" >&2; exit 1; }

# Hot-path benchmarks across every layer (nn, gp, rl, core suggest with and
# without the flight recorder, service, warehouse ingest), parsed into
# BENCH_all.json for benchdiff. Output goes through a file rather than a
# pipe so a failing `go test` cannot be masked by a succeeding parser
# (POSIX sh has no pipefail).
BENCH_PATTERN = ^(BenchmarkForward|BenchmarkForwardBatch|BenchmarkForwardBackward|BenchmarkAdamStep|BenchmarkSoftUpdate|BenchmarkFit200x32|BenchmarkPredict200x32|BenchmarkRDPERAddSample|BenchmarkTD3TrainStep|BenchmarkTD3Act|BenchmarkSuggest|BenchmarkSuggestTraced|BenchmarkWarehouseIngest|BenchmarkSessionSuggestObserve|BenchmarkSessionSuggestObserveSpine|BenchmarkFleetRoute|BenchmarkLoadgenSuggest|BenchmarkSpineIngest|BenchmarkSpineIngestBackpressure|BenchmarkSpineSample|BenchmarkAdmission)$$

bench-all:
	rm -f BENCH_all.txt BENCH_all.json
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem \
		./internal/nn ./internal/gp ./internal/rl ./internal/core ./internal/service ./internal/fleet ./internal/spine ./internal/admission . >BENCH_all.txt
	$(GO) run ./cmd/benchdiff -parse BENCH_all.txt -o BENCH_all.json
	@echo "wrote BENCH_all.json"

# Compare a fresh bench-all run against the committed baseline; exits
# non-zero on a >20% ns/op regression in any baseline hot path.
benchdiff: bench-all
	$(GO) run ./cmd/benchdiff -baseline bench_baseline.json -current BENCH_all.json

# Per-package coverage summary; leaves coverage.out for CI to archive.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
