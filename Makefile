GO ?= go

.PHONY: all build test race vet fmt check bench bench-warehouse

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The full gate CI runs: formatting, static checks, build, race-enabled tests.
check: fmt vet build race

bench:
	$(GO) test -bench=. -benchmem

# Warehouse ingest throughput only; emits BENCH_warehouse.json for CI to
# archive. Fast enough to run on every push.
bench-warehouse:
	$(GO) test -run='^$$' -bench=BenchmarkWarehouseIngest -benchmem .
