// Package deepcat's root benchmarks regenerate every table and figure of
// the paper's evaluation (see DESIGN.md for the experiment index). Each
// benchmark runs the corresponding harness experiment at the quick profile
// and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full study. Results across Figures 6-8 share one set of
// tuning sessions through the harness cache, exactly as in the paper.
// The full-scale profile is available via cmd/deepcat-bench.
package deepcat

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"testing"

	"deepcat/internal/harness"
	"deepcat/internal/rl"
	"deepcat/internal/warehouse"
)

var (
	benchOnce sync.Once
	benchH    *harness.Harness
)

// bench returns the shared quick-profile harness; models trained by one
// benchmark are reused by the others, as the experiments themselves share
// offline models.
func bench() *harness.Harness {
	benchOnce.Do(func() {
		opts := harness.QuickOptions()
		opts.Workers = harness.AutoWorkers()
		benchH = harness.New(opts)
	})
	return benchH
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.FprintTable1(io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.FprintTable2(io.Discard)
	}
}

func BenchmarkFig2(b *testing.B) {
	h := bench()
	var last harness.Fig2Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig2(200)
	}
	b.ReportMetric(100*last.FracBeatDefault, "%beat-default")
	b.ReportMetric(100*last.FracWithin10, "%within10")
}

func BenchmarkFig3(b *testing.B) {
	h := bench()
	var last harness.Fig3Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig3(h.Opts.OfflineIters, h.Opts.OfflineIters/10)
	}
	b.ReportMetric(last.Corr, "minQ-reward-corr")
}

func BenchmarkFig4(b *testing.B) {
	h := bench()
	marks := []int{300, 600, 900, 1200, 1800}
	var last harness.Fig4Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig4(marks)
	}
	b.ReportMetric(last.BestRDPER[0], "rdper-early-best-s")
	b.ReportMetric(last.BestUniform[0], "uniform-early-best-s")
}

func BenchmarkFig5(b *testing.B) {
	h := bench()
	var last harness.Fig5Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig5(h.Opts.OfflineIters * 2 / 5)
	}
	b.ReportMetric(last.TotalWith, "cost-with-twinq-s")
	b.ReportMetric(last.TotalWithout, "cost-without-twinq-s")
}

func BenchmarkFig6(b *testing.B) {
	h := bench()
	for i := 0; i < b.N; i++ {
		h.RunComparison().FprintFig6(io.Discard)
	}
	c := h.RunComparison()
	b.ReportMetric(c.AvgSpeedup("DeepCAT"), "deepcat-speedup")
	b.ReportMetric(c.AvgSpeedup("CDBTune"), "cdbtune-speedup")
	b.ReportMetric(c.AvgSpeedup("OtterTune"), "ottertune-speedup")
}

func BenchmarkFig7(b *testing.B) {
	h := bench()
	for i := 0; i < b.N; i++ {
		h.RunComparison().FprintFig7(io.Discard)
	}
	c := h.RunComparison()
	b.ReportMetric(c.AvgTotalCost("DeepCAT"), "deepcat-cost-s")
	b.ReportMetric(c.AvgTotalCost("CDBTune"), "cdbtune-cost-s")
	b.ReportMetric(c.AvgTotalCost("OtterTune"), "ottertune-cost-s")
}

func BenchmarkFig8(b *testing.B) {
	h := bench()
	for i := 0; i < b.N; i++ {
		h.RunComparison().FprintFig8(io.Discard)
	}
}

func BenchmarkFig9(b *testing.B) {
	h := bench()
	var last harness.Fig9Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig9()
	}
	// First row is the natively trained M_PR->PR reference.
	b.ReportMetric(last.DeepCATRows[0].BestTime, "native-best-s")
	var worst float64
	for _, r := range last.DeepCATRows[1:] {
		if r.BestTime > worst {
			worst = r.BestTime
		}
	}
	b.ReportMetric(worst, "worst-transfer-best-s")
}

func BenchmarkFig10(b *testing.B) {
	h := bench()
	var last harness.Fig10Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig10()
	}
	for _, r := range last.Rows {
		if r.Tuner == "DeepCAT" && r.Pair == "WC-D1" {
			b.ReportMetric(r.Speedup, "deepcat-wc-speedup-B")
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	h := bench()
	var last harness.Fig11Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig11(h.Opts.OfflineIters / 2)
	}
	// Mid-range beta (paper's pick is 0.6) vs the extremes.
	b.ReportMetric(last.Points[5].BestTime, "beta0.6-best-s")
	b.ReportMetric(last.Points[0].BestTime, "beta0.1-best-s")
	b.ReportMetric(last.Points[8].BestTime, "beta0.9-best-s")
}

func BenchmarkFig12(b *testing.B) {
	h := bench()
	ths := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	var last harness.Fig12Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig12(h.Opts.OfflineIters*2/5, ths)
	}
	b.ReportMetric(last.Points[2].Cost, "qth0.3-cost-s")
	b.ReportMetric(last.Points[4].Cost, "qth0.5-cost-s")
}

func BenchmarkExtensions(b *testing.B) {
	h := bench()
	var last harness.ExtensionResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunExtensions(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.DeepCATBest, "deepcat-5step-best-s")
	b.ReportMetric(last.Rows[0].BestTime, "bestconfig-5step-best-s")
	b.ReportMetric(last.Rows[2].BestTime, "bestconfig-50step-best-s")
}

func BenchmarkDynamicStream(b *testing.B) {
	h := bench()
	var last harness.DynamicResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunDynamic([]string{"TS", "PR"}, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.MeanSpeedup["DeepCAT"], "deepcat-stream-speedup")
	b.ReportMetric(last.MeanSpeedup["OtterTune"], "ottertune-stream-speedup")
}

func BenchmarkAblationReplay(b *testing.B) {
	h := bench()
	var last harness.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunAblationReplay(h.Opts.OfflineIters / 2); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range last.Rows {
		if row.Variant == "replay=rdper" {
			b.ReportMetric(row.BestTime, "rdper-best-s")
		}
	}
}

func BenchmarkAblationTwinQ(b *testing.B) {
	h := bench()
	var last harness.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunAblationTwinQ(h.Opts.OfflineIters * 2 / 5); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Rows[0].Cost, "minq-gate-cost-s")
	b.ReportMetric(last.Rows[2].Cost, "no-gate-cost-s")
}

func BenchmarkAblationBackbone(b *testing.B) {
	h := bench()
	var last harness.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunAblationBackbone(h.Opts.OfflineIters / 2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Rows[0].BestTime, "td3-best-s")
	b.ReportMetric(last.Rows[1].BestTime, "ddpg-best-s")
}

// BenchmarkWarehouseIngest measures the experience warehouse's append
// path — gob encoding, CRC framing, segment writes and in-memory indexing —
// at the transition shape of the TS workload (9-dim state, 32-dim action).
// Besides the standard metrics it writes BENCH_warehouse.json so CI can
// archive ingest throughput across commits.
func BenchmarkWarehouseIngest(b *testing.B) {
	wh, err := warehouse.Open(warehouse.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer wh.Close()

	tr := rl.Transition{
		State:     make([]float64, 9),
		Action:    make([]float64, 32),
		NextState: make([]float64, 9),
	}
	for i := range tr.Action {
		tr.Action[i] = float64(i) / 32
	}
	rec := warehouse.Record{Signature: "a.TS.1", Session: "bench", Transition: tr}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Transition.Reward = float64(i%10)/10 - 0.5
		if err := wh.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	secs := b.Elapsed().Seconds()
	st := wh.Stats()
	recsPerSec := float64(b.N) / secs
	mbPerSec := float64(st.LogBytes) / (1 << 20) / secs
	b.ReportMetric(recsPerSec, "records/s")
	b.ReportMetric(mbPerSec, "MB/s")

	out := struct {
		Records     int     `json:"records"`
		Seconds     float64 `json:"seconds"`
		RecordsPerS float64 `json:"records_per_sec"`
		LogBytes    int64   `json:"log_bytes"`
		MBPerS      float64 `json:"mb_per_sec"`
		NsPerRecord float64 `json:"ns_per_record"`
		Segments    int     `json:"segments"`
		StateDim    int     `json:"state_dim"`
		ActionDim   int     `json:"action_dim"`
	}{
		Records:     b.N,
		Seconds:     secs,
		RecordsPerS: recsPerSec,
		LogBytes:    st.LogBytes,
		MBPerS:      mbPerSec,
		NsPerRecord: secs / float64(b.N) * 1e9,
		Segments:    st.Segments,
		StateDim:    9,
		ActionDim:   32,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_warehouse.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAblationReward(b *testing.B) {
	h := bench()
	var last harness.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunAblationReward(h.Opts.OfflineIters / 2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Rows[0].BestTime, "immediate-best-s")
	b.ReportMetric(last.Rows[1].BestTime, "delta-best-s")
}
