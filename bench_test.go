// Package deepcat's root benchmarks regenerate every table and figure of
// the paper's evaluation (see DESIGN.md for the experiment index). Each
// benchmark runs the corresponding harness experiment at the quick profile
// and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full study. Results across Figures 6-8 share one set of
// tuning sessions through the harness cache, exactly as in the paper.
// The full-scale profile is available via cmd/deepcat-bench.
package deepcat

import (
	"io"
	"sync"
	"testing"

	"deepcat/internal/harness"
)

var (
	benchOnce sync.Once
	benchH    *harness.Harness
)

// bench returns the shared quick-profile harness; models trained by one
// benchmark are reused by the others, as the experiments themselves share
// offline models.
func bench() *harness.Harness {
	benchOnce.Do(func() {
		opts := harness.QuickOptions()
		opts.Workers = harness.AutoWorkers()
		benchH = harness.New(opts)
	})
	return benchH
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.FprintTable1(io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.FprintTable2(io.Discard)
	}
}

func BenchmarkFig2(b *testing.B) {
	h := bench()
	var last harness.Fig2Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig2(200)
	}
	b.ReportMetric(100*last.FracBeatDefault, "%beat-default")
	b.ReportMetric(100*last.FracWithin10, "%within10")
}

func BenchmarkFig3(b *testing.B) {
	h := bench()
	var last harness.Fig3Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig3(h.Opts.OfflineIters, h.Opts.OfflineIters/10)
	}
	b.ReportMetric(last.Corr, "minQ-reward-corr")
}

func BenchmarkFig4(b *testing.B) {
	h := bench()
	marks := []int{300, 600, 900, 1200, 1800}
	var last harness.Fig4Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig4(marks)
	}
	b.ReportMetric(last.BestRDPER[0], "rdper-early-best-s")
	b.ReportMetric(last.BestUniform[0], "uniform-early-best-s")
}

func BenchmarkFig5(b *testing.B) {
	h := bench()
	var last harness.Fig5Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig5(h.Opts.OfflineIters * 2 / 5)
	}
	b.ReportMetric(last.TotalWith, "cost-with-twinq-s")
	b.ReportMetric(last.TotalWithout, "cost-without-twinq-s")
}

func BenchmarkFig6(b *testing.B) {
	h := bench()
	for i := 0; i < b.N; i++ {
		h.RunComparison().FprintFig6(io.Discard)
	}
	c := h.RunComparison()
	b.ReportMetric(c.AvgSpeedup("DeepCAT"), "deepcat-speedup")
	b.ReportMetric(c.AvgSpeedup("CDBTune"), "cdbtune-speedup")
	b.ReportMetric(c.AvgSpeedup("OtterTune"), "ottertune-speedup")
}

func BenchmarkFig7(b *testing.B) {
	h := bench()
	for i := 0; i < b.N; i++ {
		h.RunComparison().FprintFig7(io.Discard)
	}
	c := h.RunComparison()
	b.ReportMetric(c.AvgTotalCost("DeepCAT"), "deepcat-cost-s")
	b.ReportMetric(c.AvgTotalCost("CDBTune"), "cdbtune-cost-s")
	b.ReportMetric(c.AvgTotalCost("OtterTune"), "ottertune-cost-s")
}

func BenchmarkFig8(b *testing.B) {
	h := bench()
	for i := 0; i < b.N; i++ {
		h.RunComparison().FprintFig8(io.Discard)
	}
}

func BenchmarkFig9(b *testing.B) {
	h := bench()
	var last harness.Fig9Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig9()
	}
	// First row is the natively trained M_PR->PR reference.
	b.ReportMetric(last.DeepCATRows[0].BestTime, "native-best-s")
	var worst float64
	for _, r := range last.DeepCATRows[1:] {
		if r.BestTime > worst {
			worst = r.BestTime
		}
	}
	b.ReportMetric(worst, "worst-transfer-best-s")
}

func BenchmarkFig10(b *testing.B) {
	h := bench()
	var last harness.Fig10Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig10()
	}
	for _, r := range last.Rows {
		if r.Tuner == "DeepCAT" && r.Pair == "WC-D1" {
			b.ReportMetric(r.Speedup, "deepcat-wc-speedup-B")
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	h := bench()
	var last harness.Fig11Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig11(h.Opts.OfflineIters / 2)
	}
	// Mid-range beta (paper's pick is 0.6) vs the extremes.
	b.ReportMetric(last.Points[5].BestTime, "beta0.6-best-s")
	b.ReportMetric(last.Points[0].BestTime, "beta0.1-best-s")
	b.ReportMetric(last.Points[8].BestTime, "beta0.9-best-s")
}

func BenchmarkFig12(b *testing.B) {
	h := bench()
	ths := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	var last harness.Fig12Result
	for i := 0; i < b.N; i++ {
		last = h.RunFig12(h.Opts.OfflineIters*2/5, ths)
	}
	b.ReportMetric(last.Points[2].Cost, "qth0.3-cost-s")
	b.ReportMetric(last.Points[4].Cost, "qth0.5-cost-s")
}

func BenchmarkExtensions(b *testing.B) {
	h := bench()
	var last harness.ExtensionResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunExtensions(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.DeepCATBest, "deepcat-5step-best-s")
	b.ReportMetric(last.Rows[0].BestTime, "bestconfig-5step-best-s")
	b.ReportMetric(last.Rows[2].BestTime, "bestconfig-50step-best-s")
}

func BenchmarkDynamicStream(b *testing.B) {
	h := bench()
	var last harness.DynamicResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunDynamic([]string{"TS", "PR"}, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.MeanSpeedup["DeepCAT"], "deepcat-stream-speedup")
	b.ReportMetric(last.MeanSpeedup["OtterTune"], "ottertune-stream-speedup")
}

func BenchmarkAblationReplay(b *testing.B) {
	h := bench()
	var last harness.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunAblationReplay(h.Opts.OfflineIters / 2); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range last.Rows {
		if row.Variant == "replay=rdper" {
			b.ReportMetric(row.BestTime, "rdper-best-s")
		}
	}
}

func BenchmarkAblationTwinQ(b *testing.B) {
	h := bench()
	var last harness.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunAblationTwinQ(h.Opts.OfflineIters * 2 / 5); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Rows[0].Cost, "minq-gate-cost-s")
	b.ReportMetric(last.Rows[2].Cost, "no-gate-cost-s")
}

func BenchmarkAblationBackbone(b *testing.B) {
	h := bench()
	var last harness.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunAblationBackbone(h.Opts.OfflineIters / 2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Rows[0].BestTime, "td3-best-s")
	b.ReportMetric(last.Rows[1].BestTime, "ddpg-best-s")
}

func BenchmarkAblationReward(b *testing.B) {
	h := bench()
	var last harness.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		if last, err = h.RunAblationReward(h.Opts.OfflineIters / 2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Rows[0].BestTime, "immediate-best-s")
	b.ReportMetric(last.Rows[1].BestTime, "delta-best-s")
}
