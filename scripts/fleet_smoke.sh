#!/bin/sh
# fleet_smoke.sh boots a 3-shard deepcat fleet on localhost, drives it with
# deepcat-loadgen, and fails if any operation errors or the suggest/observe
# p99 SLO is violated. It then exercises the fleet observability surface:
# a cross-shard request carrying an explicit traceparent is stitched from
# the shards' trace spools into one Chrome trace (fleet_trace.json), and
# after killing one shard the merged /v1/fleet/metrics view must still
# render with the dead shard marked down. CI runs it on every push;
# locally it is a one-command fleet sanity check:
#
#   sh scripts/fleet_smoke.sh [sessions] [report-path]
#
# The shards share one checkpoint directory (the deployment model for
# checkpoint handoff and kill -9 failover) and each runs its own warehouse
# with pull-based segment shipping plus a per-shard trace spool directory.
#
# Every shard sits behind a deterministic netchaos proxy injecting the mild
# "latency" fault profile (10-40ms per chunk) on every hop — client traffic
# and inter-shard proxying/probing alike — so the smoke gates prove the
# fleet meets its SLOs on a realistic link, not on loopback perfection.
# FLEET_CHAOS_SEED replays an exact fault timeline.
set -eu

SESSIONS="${1:-200}"
REPORT="${2:-fleet_report.json}"
TRACE_OUT="${3:-fleet_trace.json}"
SLO_P99_MS="${FLEET_SLO_P99_MS:-2000}"
BASE_PORT="${FLEET_BASE_PORT:-18080}"
CHAOS_SEED="${FLEET_CHAOS_SEED:-42}"
WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/bin"
PIDS=""
SERVE_PIDS=""

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

mkdir -p "$BIN"
go build -o "$BIN/deepcat-serve" ./cmd/deepcat-serve
go build -o "$BIN/deepcat-loadgen" ./cmd/deepcat-loadgen
go build -o "$BIN/deepcat-trace" ./cmd/deepcat-trace
go build -o "$BIN/deepcat-netchaos" ./cmd/deepcat-netchaos

# Proxies listen on the public ports; shards hide behind them on +100.
# Peers and public URLs name the proxy ports, so even shard-to-shard
# forwarding crosses a faulty link.
PEERS=""
TARGETS=""
PROXY_PAIRS=""
for i in 0 1 2; do
    port=$((BASE_PORT + i))
    url="http://127.0.0.1:$port"
    PEERS="$PEERS${PEERS:+,}$url"
    TARGETS="$TARGETS${TARGETS:+,}$url"
    PROXY_PAIRS="$PROXY_PAIRS${PROXY_PAIRS:+,}127.0.0.1:$port=127.0.0.1:$((BASE_PORT + 100 + i))"
done

"$BIN/deepcat-netchaos" \
    -proxies "$PROXY_PAIRS" \
    -profile latency \
    -seed "$CHAOS_SEED" \
    -duration 600s \
    >"$WORKDIR/netchaos.log" 2>&1 &
PIDS="$PIDS $!"

mkdir -p "$WORKDIR/data"
for i in 0 1 2; do
    port=$((BASE_PORT + 100 + i))
    url="http://127.0.0.1:$((BASE_PORT + i))"
    mkdir -p "$WORKDIR/wh$i" "$WORKDIR/traces$i"
    "$BIN/deepcat-serve" \
        -addr "127.0.0.1:$port" \
        -public-url "$url" \
        -peers "$PEERS" \
        -data "$WORKDIR/data" \
        -max-sessions 0 \
        -warehouse "$WORKDIR/wh$i" \
        -trace-dir "$WORKDIR/traces$i" \
        -fleet-ship-interval 2s \
        -fleet-seal-interval 5s \
        -log-level warn \
        >"$WORKDIR/serve$i.log" 2>&1 &
    PIDS="$PIDS $!"
    SERVE_PIDS="$SERVE_PIDS $!"
done

dump_logs() {
    echo "--- shard logs ---" >&2
    for i in 0 1 2; do
        echo "--- serve$i ---" >&2
        cat "$WORKDIR/serve$i.log" >&2 || true
    done
    echo "--- netchaos ---" >&2
    cat "$WORKDIR/netchaos.log" >&2 || true
}

# A shard or proxy that cannot bind (a stale daemon still holding the
# port) exits immediately; catching it here beats debugging a half-stale
# fleet where readiness probes pass against the wrong processes.
sleep 1
for pid in $PIDS; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "a shard or proxy exited at startup; is a stale daemon holding port $BASE_PORT..$((BASE_PORT + 102))?" >&2
        dump_logs
        exit 1
    fi
done

# The loadgen waits for every shard's /v1/readyz itself; -max-error-rate 0
# makes any failed operation fail the script and -slo-p99 gates tail
# latency on the serving path.
if ! "$BIN/deepcat-loadgen" \
    -targets "$TARGETS" \
    -sessions "$SESSIONS" \
    -short \
    -report "$REPORT" \
    -max-error-rate 0 \
    -slo-p99 "$SLO_P99_MS"; then
    dump_logs
    exit 1
fi

# --- Cross-shard trace propagation ---------------------------------------
# One explicit trace id on a session the ring may own anywhere; hitting
# every shard guarantees at least one request enters through a non-owner
# and leaves spans in two different shards' spools. curl -L re-sends the
# POST (with its headers) on the fleet's 307 redirects.
TRACE_ID="$(od -An -tx1 -N16 /dev/urandom | tr -d ' \n')"
TRACEPARENT="00-$TRACE_ID-00f067aa0ba902b7-01"
SHARD0="http://127.0.0.1:$BASE_PORT"
SMOKE_ID="smoke-trace-$$"
curl -fsS -L -X POST "$SHARD0/v1/sessions" \
    -H "traceparent: $TRACEPARENT" \
    -d "{\"id\":\"$SMOKE_ID\",\"workload\":\"TS\",\"input\":1,\"no_warm_start\":true}" >/dev/null
for i in 0 1 2; do
    url="http://127.0.0.1:$((BASE_PORT + i))"
    curl -fsS -L -X POST "$url/v1/sessions/$SMOKE_ID/suggest" \
        -H "traceparent: $TRACEPARENT" -d '{}' >/dev/null
done
if ! "$BIN/deepcat-trace" \
    -stitch "$WORKDIR/traces0,$WORKDIR/traces1,$WORKDIR/traces2" \
    -trace-id "$TRACE_ID" \
    -require-sources 2; then
    echo "cross-shard trace did not span two spools" >&2
    dump_logs
    exit 1
fi
"$BIN/deepcat-trace" \
    -stitch "$WORKDIR/traces0,$WORKDIR/traces1,$WORKDIR/traces2" \
    -trace-id "$TRACE_ID" \
    -require-sources 2 -export chrome -o "$TRACE_OUT"

# --- Degraded fleet metrics ----------------------------------------------
# Kill shard 2 outright and assert the merged exposition on a survivor
# still renders, with the dead shard's availability gauge at 0.
set -- $SERVE_PIDS
kill -9 "$3" 2>/dev/null || true
DEAD_URL="http://127.0.0.1:$((BASE_PORT + 2))"
METRICS="$WORKDIR/fleet_metrics.txt"
ok=""
for attempt in 1 2 3 4 5; do
    if curl -fsS "$SHARD0/v1/fleet/metrics" >"$METRICS" &&
        grep -q "deepcat_fleet_shard_up{shard=\"$DEAD_URL\"} 0" "$METRICS" &&
        grep -q "deepcat_http_requests_total" "$METRICS"; then
        ok=1
        break
    fi
    sleep 1
done
if [ -z "$ok" ]; then
    echo "merged fleet metrics did not degrade cleanly after shard kill:" >&2
    cat "$METRICS" >&2 || true
    dump_logs
    exit 1
fi
echo "fleet smoke passed: $SESSIONS sessions, report in $REPORT, stitched trace in $TRACE_OUT"
