#!/bin/sh
# fleet_smoke.sh boots a 3-shard deepcat fleet on localhost, drives it with
# deepcat-loadgen, and fails if any operation errors. CI runs it on every
# push; locally it is a one-command fleet sanity check:
#
#   sh scripts/fleet_smoke.sh [sessions] [report-path]
#
# The shards share one checkpoint directory (the deployment model for
# checkpoint handoff and kill -9 failover) and each runs its own warehouse
# with pull-based segment shipping.
set -eu

SESSIONS="${1:-200}"
REPORT="${2:-fleet_report.json}"
BASE_PORT="${FLEET_BASE_PORT:-18080}"
WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/bin"
PIDS=""

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

mkdir -p "$BIN"
go build -o "$BIN/deepcat-serve" ./cmd/deepcat-serve
go build -o "$BIN/deepcat-loadgen" ./cmd/deepcat-loadgen

PEERS=""
TARGETS=""
for i in 0 1 2; do
    port=$((BASE_PORT + i))
    url="http://127.0.0.1:$port"
    PEERS="$PEERS${PEERS:+,}$url"
    TARGETS="$TARGETS${TARGETS:+,}$url"
done

mkdir -p "$WORKDIR/data"
for i in 0 1 2; do
    port=$((BASE_PORT + i))
    url="http://127.0.0.1:$port"
    mkdir -p "$WORKDIR/wh$i"
    "$BIN/deepcat-serve" \
        -addr "127.0.0.1:$port" \
        -public-url "$url" \
        -peers "$PEERS" \
        -data "$WORKDIR/data" \
        -max-sessions 0 \
        -warehouse "$WORKDIR/wh$i" \
        -fleet-ship-interval 2s \
        -fleet-seal-interval 5s \
        -log-level warn \
        >"$WORKDIR/serve$i.log" 2>&1 &
    PIDS="$PIDS $!"
done

# The loadgen waits for every shard's /v1/readyz itself; -max-error-rate 0
# makes any failed operation fail the script.
if ! "$BIN/deepcat-loadgen" \
    -targets "$TARGETS" \
    -sessions "$SESSIONS" \
    -short \
    -report "$REPORT" \
    -max-error-rate 0; then
    echo "--- shard logs ---" >&2
    for i in 0 1 2; do
        echo "--- serve$i ---" >&2
        cat "$WORKDIR/serve$i.log" >&2 || true
    done
    exit 1
fi
echo "fleet smoke passed: $SESSIONS sessions, report in $REPORT"
