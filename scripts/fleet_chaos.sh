#!/bin/sh
# fleet_chaos.sh is the overload-resilience gate: it boots a 3-shard
# deepcat fleet with adaptive admission control and spine ingest
# backpressure enabled, stands every shard behind a deterministic netchaos
# proxy injecting the "overload" fault profile (rolling latency windows
# plus bandwidth throttles), and storms it with deepcat-loadgen. The run
# fails unless:
#
#   - availability stays >= 99%: every operation gets a controlled answer
#     (2xx success or a deliberate 429/504 shed), not a transport error
#   - shed paths produce zero genuine 5xx — overload answers are 429
#     (admission) or 504 (deadline budget), never 500/502/503
#   - after the fault schedule heals, a second loadgen pass completes with
#     zero errors (breakers closed, degraded sessions recovered)
#   - killing a shard mid-flight loses at most one acknowledged
#     observation: the session resumes on its new ring owner within one
#     step of where the client left it
#
# The netchaos fault schedule is a pure function of FLEET_CHAOS_SEED, so a
# CI failure replays locally against the byte-identical fault timeline:
#
#   sh scripts/fleet_chaos.sh [sessions] [report-path] [chaos-report-path]
set -eu

SESSIONS="${1:-150}"
REPORT="${2:-chaos_loadgen.json}"
CHAOS_REPORT="${3:-chaos_report.json}"
BASE_PORT="${FLEET_BASE_PORT:-18480}"
CHAOS_SEED="${FLEET_CHAOS_SEED:-1337}"
STORM_SECONDS="${FLEET_STORM_SECONDS:-30}"
WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/bin"
PIDS=""
SERVE_PIDS=""
NETCHAOS_PID=""

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

dump_logs() {
    echo "--- shard logs ---" >&2
    for i in 0 1 2; do
        echo "--- serve$i ---" >&2
        cat "$WORKDIR/serve$i.log" >&2 || true
    done
    echo "--- netchaos ---" >&2
    cat "$WORKDIR/netchaos.log" >&2 || true
}

mkdir -p "$BIN"
go build -o "$BIN/deepcat-serve" ./cmd/deepcat-serve
go build -o "$BIN/deepcat-loadgen" ./cmd/deepcat-loadgen
go build -o "$BIN/deepcat-netchaos" ./cmd/deepcat-netchaos

# Proxies on the public ports, shards behind them on +100; peers and
# public URLs name the proxies so inter-shard traffic is faulty too.
PEERS=""
TARGETS=""
PROXY_PAIRS=""
for i in 0 1 2; do
    port=$((BASE_PORT + i))
    url="http://127.0.0.1:$port"
    PEERS="$PEERS${PEERS:+,}$url"
    TARGETS="$TARGETS${TARGETS:+,}$url"
    PROXY_PAIRS="$PROXY_PAIRS${PROXY_PAIRS:+,}127.0.0.1:$port=127.0.0.1:$((BASE_PORT + 100 + i))"
done

# The proxies serve faults for STORM_SECONDS, then linger fault-free so
# the recovery phase runs over the same (now healthy) links; SIGTERM at
# the end makes netchaos write its report before exiting.
"$BIN/deepcat-netchaos" \
    -proxies "$PROXY_PAIRS" \
    -profile overload \
    -seed "$CHAOS_SEED" \
    -duration "${STORM_SECONDS}s" \
    -linger 600s \
    -report "$CHAOS_REPORT" \
    >"$WORKDIR/netchaos.log" 2>&1 &
NETCHAOS_PID=$!
PIDS="$PIDS $NETCHAOS_PID"
STORM_START=$(date +%s)

mkdir -p "$WORKDIR/data"
for i in 0 1 2; do
    port=$((BASE_PORT + 100 + i))
    url="http://127.0.0.1:$((BASE_PORT + i))"
    mkdir -p "$WORKDIR/wh$i"
    "$BIN/deepcat-serve" \
        -addr "127.0.0.1:$port" \
        -public-url "$url" \
        -peers "$PEERS" \
        -data "$WORKDIR/data" \
        -max-sessions 0 \
        -warehouse "$WORKDIR/wh$i" \
        -admission \
        -spine -spine-queue 256 -spine-learn-interval 1s \
        -trace-ring 128 \
        -fleet-ship-interval 2s \
        -fleet-seal-interval 5s \
        -log-level warn \
        >"$WORKDIR/serve$i.log" 2>&1 &
    PIDS="$PIDS $!"
    SERVE_PIDS="$SERVE_PIDS $!"
done

sleep 1
for pid in $PIDS; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "a shard or proxy exited at startup; is a stale daemon holding port $BASE_PORT..$((BASE_PORT + 102))?" >&2
        dump_logs
        exit 1
    fi
done

# --- Phase 1: storm through active fault windows --------------------------
# Sheds count as errors in the loadgen's error taxonomy, so the error-rate
# gate is disabled; what must hold is availability (every op gets a
# controlled answer) and the complete absence of genuine 5xx.
echo "phase 1: storm (${STORM_SECONDS}s overload profile, seed $CHAOS_SEED)"
if ! "$BIN/deepcat-loadgen" \
    -targets "$TARGETS" \
    -sessions "$SESSIONS" \
    -concurrency 96 \
    -rounds 2 \
    -report "$REPORT" \
    -max-error-rate 1.0 \
    -max-5xx 0 \
    -min-availability 0.99; then
    dump_logs
    exit 1
fi

# --- Phase 2: recovery after heal ----------------------------------------
# Wait out the remainder of the fault schedule plus a margin, then demand
# a perfectly clean pass over the healed links: any lingering open breaker,
# stuck admission limit or wedged spine queue surfaces here as an error.
now=$(date +%s)
remaining=$((STORM_START + STORM_SECONDS + 3 - now))
if [ "$remaining" -gt 0 ]; then
    echo "phase 2: waiting ${remaining}s for the fault schedule to heal"
    sleep "$remaining"
fi
echo "phase 2: recovery pass over healed links"
if ! "$BIN/deepcat-loadgen" \
    -targets "$TARGETS" \
    -sessions 60 \
    -concurrency 16 \
    -rounds 2 \
    -max-error-rate 0; then
    echo "fleet did not recover cleanly after the fault schedule healed" >&2
    dump_logs
    exit 1
fi

# --- Phase 3: kill a shard, bound observation loss ------------------------
# Drive one session to a known step through the proxies, kill -9 shard 2,
# then re-read the session through a survivor. The shared checkpoint
# directory means the new ring owner resumes it from the last acknowledged
# observation: the step may regress by at most 1.
SHARD0="http://127.0.0.1:$BASE_PORT"
OBS_ID="chaos-obs-$$"
curl -fsS -L -X POST "$SHARD0/v1/sessions" \
    -d "{\"id\":\"$OBS_ID\",\"workload\":\"TS\",\"input\":1,\"no_warm_start\":true}" >/dev/null
ROUNDS=5
for r in $(seq 1 $ROUNDS); do
    curl -fsS -L -X POST "$SHARD0/v1/sessions/$OBS_ID/suggest" -d '{}' >/dev/null
    curl -fsS -L -X POST "$SHARD0/v1/sessions/$OBS_ID/observe" -d '{"exec_time":70}' >/dev/null
done
BEFORE_STEP=$(curl -fsS -L "$SHARD0/v1/sessions/$OBS_ID" | sed -n 's/.*"step":\([0-9]*\).*/\1/p')
if [ -z "$BEFORE_STEP" ]; then
    echo "could not read session step before shard kill" >&2
    dump_logs
    exit 1
fi

set -- $SERVE_PIDS
kill -9 "$3" 2>/dev/null || true

AFTER_STEP=""
for attempt in 1 2 3 4 5 6 7 8 9 10; do
    AFTER_STEP=$(curl -fsS -L "$SHARD0/v1/sessions/$OBS_ID" 2>/dev/null | sed -n 's/.*"step":\([0-9]*\).*/\1/p' || true)
    if [ -n "$AFTER_STEP" ]; then
        break
    fi
    sleep 1
done
if [ -z "$AFTER_STEP" ]; then
    echo "session $OBS_ID unreachable after shard kill (no surviving owner resumed it)" >&2
    dump_logs
    exit 1
fi
if [ "$AFTER_STEP" -lt $((BEFORE_STEP - 1)) ]; then
    echo "shard kill lost $((BEFORE_STEP - AFTER_STEP)) observations (step $BEFORE_STEP -> $AFTER_STEP), more than the 1 allowed" >&2
    dump_logs
    exit 1
fi
echo "phase 3: shard kill preserved session progress (step $BEFORE_STEP -> $AFTER_STEP)"

# --- Chaos report ---------------------------------------------------------
# SIGTERM makes netchaos write its report (schedules + per-proxy fault
# stats) for the CI artifact; the loadgen report carries the shed taxonomy.
kill "$NETCHAOS_PID" 2>/dev/null || true
wait "$NETCHAOS_PID" 2>/dev/null || true
if [ ! -s "$CHAOS_REPORT" ]; then
    echo "netchaos did not write its chaos report to $CHAOS_REPORT" >&2
    dump_logs
    exit 1
fi

SHED_429=$(sed -n 's/.*"shed_429": *\([0-9]*\).*/\1/p' "$REPORT" | head -1)
SHED_504=$(sed -n 's/.*"shed_504": *\([0-9]*\).*/\1/p' "$REPORT" | head -1)
echo "fleet chaos passed: $SESSIONS storm sessions (shed 429=$SHED_429 504=$SHED_504), recovery clean, loss-bound held"
echo "  loadgen report in $REPORT, chaos report in $CHAOS_REPORT"
